#include "core/model/cxt_item.hpp"

#include <cstdio>

#include "core/model/vocabulary.hpp"

namespace contory {

const char* SourceKindName(SourceKind k) noexcept {
  switch (k) {
    case SourceKind::kUnknown: return "unknown";
    case SourceKind::kIntSensor: return "intSensor";
    case SourceKind::kExtInfra: return "extInfra";
    case SourceKind::kAdHocNetwork: return "adHocNetwork";
    case SourceKind::kApplication: return "application";
  }
  return "?";
}

std::string SourceId::ToString() const {
  std::string out = SourceKindName(kind);
  if (!address.empty()) {
    out += ' ';
    out += address;
  }
  return out;
}

std::string CxtItem::ToString() const {
  std::string out = type + "=" + value.ToString();
  out += " @" + FormatTime(timestamp);
  const std::string meta = metadata.ToString();
  if (!meta.empty()) out += " [" + meta + "]";
  if (source.kind != SourceKind::kUnknown) {
    out += " (" + source.ToString() + ")";
  }
  return out;
}

void CxtItem::Encode(ByteWriter& w) const {
  const std::size_t start = w.size();
  w.WriteString(id);
  w.WriteString(type);
  value.Encode(w);
  w.WriteI64(timestamp.time_since_epoch().count());
  w.WriteBool(lifetime.has_value());
  if (lifetime.has_value()) w.WriteI64(lifetime->count());
  w.WriteU8(static_cast<std::uint8_t>(source.kind));
  w.WriteString(source.address);
  metadata.Encode(w);
  // Pad to the prototype's per-type envelope so wire sizes are faithful.
  // A length prefix before the padding lets Deserialize skip it.
  const std::size_t body = w.size() - start;
  const auto info = CxtVocabulary::Default().Find(type);
  const std::size_t envelope =
      info.has_value() ? info->envelope_bytes : 0;
  const std::size_t padded =
      envelope > body + 4 ? envelope - body - 4 : 0;
  w.WriteU32(static_cast<std::uint32_t>(padded));
  w.WritePadding(padded);
}

std::vector<std::byte> CxtItem::Serialize() const {
  ByteWriter w;
  Encode(w);
  return std::move(w).Take();
}

Result<CxtItem> CxtItem::Deserialize(ByteReader& r) {
  CxtItem item;
  auto id = r.ReadString();
  if (!id.ok()) return id.status();
  item.id = *std::move(id);
  auto type = r.ReadString();
  if (!type.ok()) return type.status();
  item.type = *std::move(type);
  auto value = CxtValue::Decode(r);
  if (!value.ok()) return value.status();
  item.value = *std::move(value);
  const auto ts = r.ReadI64();
  if (!ts.ok()) return ts.status();
  item.timestamp = SimTime{SimDuration{*ts}};
  const auto has_lifetime = r.ReadBool();
  if (!has_lifetime.ok()) return has_lifetime.status();
  if (*has_lifetime) {
    const auto lt = r.ReadI64();
    if (!lt.ok()) return lt.status();
    item.lifetime = SimDuration{*lt};
  }
  const auto kind = r.ReadU8();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<std::uint8_t>(SourceKind::kApplication)) {
    return InvalidArgument("bad source kind");
  }
  item.source.kind = static_cast<SourceKind>(*kind);
  auto address = r.ReadString();
  if (!address.ok()) return address.status();
  item.source.address = *std::move(address);
  auto metadata = Metadata::Decode(r);
  if (!metadata.ok()) return metadata.status();
  item.metadata = *std::move(metadata);
  const auto padding = r.ReadU32();
  if (!padding.ok()) return padding.status();
  if (auto s = r.Skip(*padding); !s.ok()) return s;
  return item;
}

Result<CxtItem> CxtItem::Deserialize(const std::vector<std::byte>& wire) {
  ByteReader r{wire};
  return Deserialize(r);
}

}  // namespace contory
