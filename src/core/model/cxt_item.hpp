// Context item: the unit of context exchange in Contory.
//
// "Each cxtItem consists of type (context category), value (current
// value(s) of the item), and timestamp (the time at which the context item
// had such a value). Optionally, it can have a lifetime (validity
// duration), a source identifier (e.g., sensor, infrastructure, and device
// addresses), and other metadata information" (Sec. 4.1).
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "core/model/cxt_value.hpp"
#include "core/model/metadata.hpp"

namespace contory {

/// Which provisioning mechanism produced an item.
enum class SourceKind : std::uint8_t {
  kUnknown = 0,
  kIntSensor,
  kExtInfra,
  kAdHocNetwork,
  kApplication,  // published directly by a client
};

[[nodiscard]] const char* SourceKindName(SourceKind k) noexcept;

/// Identifier of the entity that produced a context item.
struct SourceId {
  SourceKind kind = SourceKind::kUnknown;
  /// Sensor, infrastructure or device address ("bt:gps-1", "node:7",
  /// "infra.dynamos.fi").
  std::string address;

  [[nodiscard]] std::string ToString() const;
  friend bool operator==(const SourceId&, const SourceId&) = default;
};

struct CxtItem {
  std::string id;  // unique per item, for dedup across mechanisms
  std::string type;
  CxtValue value;
  SimTime timestamp{};
  /// Validity duration; nullopt = does not expire.
  std::optional<SimDuration> lifetime;
  SourceId source;
  Metadata metadata;

  /// True when the item is no older than `freshness` at time `now`
  /// (FRESHNESS clause semantics: "how recent the context data must be").
  [[nodiscard]] bool IsFresh(SimTime now, SimDuration freshness) const {
    return now - timestamp <= freshness;
  }

  /// True when the lifetime has elapsed at `now`.
  [[nodiscard]] bool IsExpired(SimTime now) const {
    return lifetime.has_value() && timestamp + *lifetime <= now;
  }

  /// "temperature=14 @t=12.000s [accuracy=0.2] (adHocNetwork node:3)".
  [[nodiscard]] std::string ToString() const;

  /// Serializes to the prototype's wire format. Pads to the type's
  /// envelope size from the vocabulary (wind: 53 B, location: 136 B, ...)
  /// so transport costs match the paper's Table 1/2 payloads.
  [[nodiscard]] std::vector<std::byte> Serialize() const;
  [[nodiscard]] static Result<CxtItem> Deserialize(
      const std::vector<std::byte>& wire);
  [[nodiscard]] static Result<CxtItem> Deserialize(ByteReader& r);
  void Encode(ByteWriter& w) const;
};

}  // namespace contory
