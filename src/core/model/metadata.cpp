#include "core/model/metadata.hpp"

#include <array>
#include <cstdio>

namespace contory {
namespace {

constexpr std::array<const char*, 7> kFields = {
    "correctness", "precision", "accuracy", "completeness", "staleness",
    "privacy", "trust"};

std::optional<std::uint8_t> EncodeOptional(std::optional<double> v) {
  return v.has_value() ? std::optional<std::uint8_t>{1}
                       : std::optional<std::uint8_t>{0};
}

}  // namespace

const char* TrustLevelName(TrustLevel t) noexcept {
  switch (t) {
    case TrustLevel::kUntrusted: return "untrusted";
    case TrustLevel::kUnknown: return "unknown";
    case TrustLevel::kTrusted: return "trusted";
  }
  return "?";
}

const char* PrivacyLevelName(PrivacyLevel p) noexcept {
  switch (p) {
    case PrivacyLevel::kPublic: return "public";
    case PrivacyLevel::kProtected: return "protected";
    case PrivacyLevel::kPrivate: return "private";
  }
  return "?";
}

bool IsMetadataField(const std::string& name) noexcept {
  for (const char* f : kFields) {
    if (name == f) return true;
  }
  return false;
}

Result<double> Metadata::GetNumeric(const std::string& field) const {
  const auto numeric = [&](const std::optional<double>& v) -> Result<double> {
    if (!v.has_value()) return NotFound("metadata field '" + field + "' unset");
    return *v;
  };
  if (field == "correctness") return numeric(correctness);
  if (field == "precision") return numeric(precision);
  if (field == "accuracy") return numeric(accuracy);
  if (field == "completeness") return numeric(completeness);
  if (field == "staleness") return numeric(staleness_seconds);
  if (field == "privacy") return static_cast<double>(privacy);
  if (field == "trust") return static_cast<double>(trust);
  return InvalidArgument("unknown metadata field '" + field + "'");
}

Status Metadata::SetNumeric(const std::string& field, double value) {
  if (field == "correctness") {
    correctness = value;
  } else if (field == "precision") {
    precision = value;
  } else if (field == "accuracy") {
    accuracy = value;
  } else if (field == "completeness") {
    completeness = value;
  } else if (field == "staleness") {
    staleness_seconds = value;
  } else if (field == "privacy") {
    privacy = static_cast<PrivacyLevel>(static_cast<int>(value));
  } else if (field == "trust") {
    trust = static_cast<TrustLevel>(static_cast<int>(value));
  } else {
    return InvalidArgument("unknown metadata field '" + field + "'");
  }
  return Status::Ok();
}

bool Metadata::Satisfies(const Metadata& required) const {
  // Error-bound fields: smaller is better; the item must be at least as
  // accurate/precise as requested (and must declare the field at all).
  if (required.accuracy.has_value() &&
      (!accuracy.has_value() || *accuracy > *required.accuracy)) {
    return false;
  }
  if (required.precision.has_value() &&
      (!precision.has_value() || *precision > *required.precision)) {
    return false;
  }
  // Quality fields: larger is better.
  if (required.correctness.has_value() &&
      (!correctness.has_value() || *correctness < *required.correctness)) {
    return false;
  }
  if (required.completeness.has_value() &&
      (!completeness.has_value() || *completeness < *required.completeness)) {
    return false;
  }
  if (trust < required.trust) return false;
  // The item must not be more private than the requester tolerates.
  if (privacy > required.privacy) return false;
  return true;
}

std::string Metadata::ToString() const {
  std::string out;
  char buf[64];
  const auto append = [&](const char* name, double v) {
    if (!out.empty()) out += ',';
    std::snprintf(buf, sizeof buf, "%s=%g", name, v);
    out += buf;
  };
  if (correctness) append("correctness", *correctness);
  if (precision) append("precision", *precision);
  if (accuracy) append("accuracy", *accuracy);
  if (completeness) append("completeness", *completeness);
  if (staleness_seconds) append("staleness", *staleness_seconds);
  if (privacy != PrivacyLevel::kPublic) {
    if (!out.empty()) out += ',';
    out += "privacy=";
    out += PrivacyLevelName(privacy);
  }
  if (trust != TrustLevel::kUnknown) {
    if (!out.empty()) out += ',';
    out += "trust=";
    out += TrustLevelName(trust);
  }
  return out;
}

void Metadata::Encode(ByteWriter& w) const {
  // staleness_seconds is intentionally not encoded: it is a local-only
  // annotation stamped at delivery time (degraded mode), and widening the
  // wire format would change every calibrated envelope size.
  for (const auto& field :
       {correctness, precision, accuracy, completeness}) {
    w.WriteU8(*EncodeOptional(field));
    if (field.has_value()) w.WriteF64(*field);
  }
  w.WriteU8(static_cast<std::uint8_t>(privacy));
  w.WriteU8(static_cast<std::uint8_t>(trust));
}

Result<Metadata> Metadata::Decode(ByteReader& r) {
  Metadata m;
  for (std::optional<double>* field :
       {&m.correctness, &m.precision, &m.accuracy, &m.completeness}) {
    const auto present = r.ReadU8();
    if (!present.ok()) return present.status();
    if (*present != 0) {
      const auto v = r.ReadF64();
      if (!v.ok()) return v.status();
      *field = *v;
    }
  }
  const auto privacy = r.ReadU8();
  if (!privacy.ok()) return privacy.status();
  if (*privacy > static_cast<std::uint8_t>(PrivacyLevel::kPrivate)) {
    return InvalidArgument("bad privacy level");
  }
  m.privacy = static_cast<PrivacyLevel>(*privacy);
  const auto trust = r.ReadU8();
  if (!trust.ok()) return trust.status();
  if (*trust > static_cast<std::uint8_t>(TrustLevel::kTrusted)) {
    return InvalidArgument("bad trust level");
  }
  m.trust = static_cast<TrustLevel>(*trust);
  return m;
}

}  // namespace contory
