#include "core/model/vocabulary.hpp"

#include <algorithm>

namespace contory {

CxtVocabulary::CxtVocabulary() {
  // Envelope sizes: the paper gives wind=53 and location=light=136 bytes;
  // the rest are interpolated by value complexity.
  types_ = {
      {vocab::kLocation, ValueKind::kGeo, 136, "lat,lon"},
      {vocab::kSpeed, ValueKind::kNumber, 56, "knots"},
      {vocab::kTime, ValueKind::kNumber, 53, "s"},
      {vocab::kDuration, ValueKind::kNumber, 53, "s"},
      {vocab::kActivity, ValueKind::kString, 72, ""},
      {vocab::kMood, ValueKind::kString, 72, ""},
      {vocab::kTemperature, ValueKind::kNumber, 56, "degC"},
      {vocab::kLight, ValueKind::kNumber, 136, "lux"},
      {vocab::kNoise, ValueKind::kNumber, 56, "dB"},
      {vocab::kHumidity, ValueKind::kNumber, 56, "%"},
      {vocab::kWind, ValueKind::kNumber, 53, "m/s"},
      {vocab::kPressure, ValueKind::kNumber, 56, "hPa"},
      {vocab::kNearbyDevices, ValueKind::kNumber, 64, "count"},
      {vocab::kBatteryLevel, ValueKind::kNumber, 56, "%"},
      {vocab::kMemoryFree, ValueKind::kNumber, 56, "KB"},
  };
}

const CxtVocabulary& CxtVocabulary::Default() {
  static const CxtVocabulary vocabulary;
  return vocabulary;
}

std::optional<CxtTypeInfo> CxtVocabulary::Find(const std::string& type) const {
  const auto it = std::find_if(
      types_.begin(), types_.end(),
      [&](const CxtTypeInfo& info) { return info.name == type; });
  if (it == types_.end()) return std::nullopt;
  return *it;
}

bool CxtVocabulary::Knows(const std::string& type) const {
  return Find(type).has_value();
}

std::vector<std::string> CxtVocabulary::TypeNames() const {
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (const auto& t : types_) names.push_back(t.name);
  return names;
}

void CxtVocabulary::RegisterType(CxtTypeInfo info) {
  const auto it = std::find_if(
      types_.begin(), types_.end(),
      [&](const CxtTypeInfo& t) { return t.name == info.name; });
  if (it != types_.end()) {
    *it = std::move(info);
  } else {
    types_.push_back(std::move(info));
  }
}

}  // namespace contory
