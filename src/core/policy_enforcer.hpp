// Control-policy enforcement (Sec. 4.5 contextRules).
//
// Periodically evaluates the contextRules against the ResourcesMonitor
// and enforces actions that just became active: reducePower suspends the
// 2G/3G queries, reduceMemory halves the repository rings, reduceLoad
// caps the provider population. Kept apart from the query pipeline — the
// rules cut across every stage (admission consults the active set, the
// planner demotes extInfra, the facades get StopAll'd).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/facade.hpp"
#include "core/repository.hpp"
#include "core/resources_monitor.hpp"
#include "core/rules.hpp"

namespace contory::core {

class PolicyEnforcer {
 public:
  struct Config {
    /// reduceLoad caps the total provider count at this value.
    std::size_t reduce_load_provider_cap = 2;
  };

  using FacadeMap = std::map<query::SourceSel, std::unique_ptr<Facade>>;

  PolicyEnforcer(RulesEngine& rules, ResourcesMonitor& monitor,
                 CxtRepository& repository, FacadeMap& facades,
                 Config config)
      : rules_(rules),
        monitor_(monitor),
        repository_(repository),
        facades_(facades),
        config_(config) {}

  /// Re-evaluates the rules and enforces newly activated actions.
  void Evaluate();

  /// Actions active at the last evaluation. Stable storage: the planner
  /// and admission stage hold a pointer to this set.
  [[nodiscard]] const std::set<RuleAction>& active_actions() const noexcept {
    return active_actions_;
  }

 private:
  void EnforceReducePower();
  void EnforceReduceMemory();
  void EnforceReduceLoad();

  RulesEngine& rules_;
  ResourcesMonitor& monitor_;
  CxtRepository& repository_;
  FacadeMap& facades_;
  Config config_;
  std::set<RuleAction> active_actions_;
};

}  // namespace contory::core
