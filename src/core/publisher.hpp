// CxtPublisher (Sec. 4.3, 5.2).
//
// "The CxtPublisher allows publishing context information in ad hoc
// networks by means of the BTReference or the WiFiReference. Each time a
// context item has to be published, two access modalities can be applied:
// public access allows any external entity to access the item, and
// authenticated access locks the item with a key that must be known by
// the requester."
//
// BT publication registers a "contory.cxt.<type>" service record whose
// DataElement carries the serialized item (first publication pays the
// ~140 ms SDDB registration of Table 1; re-publication updates in place).
// WiFi publication exposes an SM tag whose value is the hex-encoded item.
// Publication requires prior registration (registerCxtServer).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "core/model/cxt_item.hpp"
#include "core/references/bt_reference.hpp"
#include "core/references/wifi_reference.hpp"

namespace contory::core {

/// BT service-name prefix for published context items.
[[nodiscard]] std::string CxtServiceName(const std::string& type);

// --- BT item-poll micro-protocol ------------------------------------------
// Once an AdHocCxtProvider has discovered a publishing device, periodic
// queries poll the current item over the ACL link instead of re-running
// SDP — this is the cheap "periodic query, without discovery" path of
// Table 2. Frames:
//   request:  u8 kCxtGet, string type, string key
//   response: u8 ok, [item bytes]
inline constexpr std::uint8_t kCxtGetOp = 0xC1;
inline constexpr std::uint8_t kCxtGetRespOp = 0xC2;

[[nodiscard]] std::vector<std::byte> BuildCxtGetRequest(
    const std::string& type, const std::string& key);
struct CxtGetRequest {
  std::string type;
  std::string key;
};
[[nodiscard]] Result<CxtGetRequest> ParseCxtGetRequest(
    const std::vector<std::byte>& frame);
[[nodiscard]] std::vector<std::byte> BuildCxtGetResponse(
    const Result<CxtItem>& item);
[[nodiscard]] Result<CxtItem> ParseCxtGetResponse(
    const std::vector<std::byte>& frame);

class CxtPublisher {
 public:
  CxtPublisher(BTReference& bt, WiFiReference& wifi);
  ~CxtPublisher();

  CxtPublisher(const CxtPublisher&) = delete;
  CxtPublisher& operator=(const CxtPublisher&) = delete;

  /// Publishes `item` over every available ad hoc channel. With a
  /// non-empty `access_key`, the WiFi tag is key-locked (authenticated
  /// access); the BT record is registered under a ".locked" name
  /// requiring the key in the fetch path.
  /// `done` (optional) fires when the slow path (BT registration) has
  /// completed; immediate when only WiFi is available.
  void Publish(const CxtItem& item, std::string access_key = {},
               std::function<void(Status)> done = {});

  /// Withdraws the publication for `type` from both channels.
  void Unpublish(const std::string& type);

  [[nodiscard]] bool IsPublished(const std::string& type) const;
  [[nodiscard]] std::size_t published_count() const noexcept {
    return bt_handles_.size() + wifi_types_.size();
  }

  /// Current published item of `type` presenting `key` (the BT poll
  /// responder path; also used by tests).
  [[nodiscard]] Result<CxtItem> CurrentItem(const std::string& type,
                                            const std::string& key) const;

 private:
  void OnBtData(net::BtLinkId link, const std::vector<std::byte>& frame);

  struct Publication {
    CxtItem item;
    std::string access_key;
  };

  BTReference& bt_;
  WiFiReference& wifi_;
  std::map<std::string, net::ServiceHandle> bt_handles_;  // type -> handle
  std::map<std::string, bool> wifi_types_;                // type -> locked
  std::map<std::string, Publication> current_;            // type -> item
  BTReference::ListenerId bt_listener_ = 0;
};

}  // namespace contory::core
