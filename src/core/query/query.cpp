#include "core/query/query.hpp"

#include <stdexcept>

#include "core/query/parser.hpp"

namespace contory::query {
namespace {

/// The J2ME prototype's serialized query object size (Sec. 6.1).
constexpr std::size_t kQueryEnvelopeBytes = 205;

void EncodePredicate(ByteWriter& w, const Predicate& p) {
  w.WriteU8(static_cast<std::uint8_t>(p.kind));
  if (p.kind == Predicate::Kind::kComparison) {
    w.WriteU8(static_cast<std::uint8_t>(p.comparison.aggregate));
    w.WriteString(p.comparison.field);
    w.WriteU8(static_cast<std::uint8_t>(p.comparison.op));
    p.comparison.literal.Encode(w);
    return;
  }
  w.WriteU32(static_cast<std::uint32_t>(p.children.size()));
  for (const auto& child : p.children) EncodePredicate(w, child);
}

Result<Predicate> DecodePredicate(ByteReader& r, int depth = 0) {
  if (depth > 32) return InvalidArgument("predicate nesting too deep");
  const auto kind = r.ReadU8();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<std::uint8_t>(Predicate::Kind::kNot)) {
    return InvalidArgument("bad predicate kind");
  }
  Predicate p;
  p.kind = static_cast<Predicate::Kind>(*kind);
  if (p.kind == Predicate::Kind::kComparison) {
    const auto agg = r.ReadU8();
    if (!agg.ok()) return agg.status();
    if (*agg > static_cast<std::uint8_t>(AggregateFn::kSum)) {
      return InvalidArgument("bad aggregate function");
    }
    p.comparison.aggregate = static_cast<AggregateFn>(*agg);
    auto field = r.ReadString();
    if (!field.ok()) return field.status();
    p.comparison.field = *std::move(field);
    const auto op = r.ReadU8();
    if (!op.ok()) return op.status();
    if (*op > static_cast<std::uint8_t>(CompareOp::kGe)) {
      return InvalidArgument("bad compare op");
    }
    p.comparison.op = static_cast<CompareOp>(*op);
    auto literal = CxtValue::Decode(r);
    if (!literal.ok()) return literal.status();
    p.comparison.literal = *std::move(literal);
    return p;
  }
  const auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  if (*count > 64) return InvalidArgument("too many predicate children");
  p.children.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto child = DecodePredicate(r, depth + 1);
    if (!child.ok()) return child.status();
    p.children.push_back(*std::move(child));
  }
  return p;
}

void EncodeSource(ByteWriter& w, const SourceSpec& s) {
  w.WriteU8(static_cast<std::uint8_t>(s.kind));
  w.WriteString(s.address);
  w.WriteBool(s.scope.has_value());
  if (s.scope.has_value()) {
    w.WriteI64(s.scope->num_nodes);
    w.WriteI64(s.scope->num_hops);
  }
  w.WriteBool(s.region.has_value());
  if (s.region.has_value()) {
    w.WriteF64(s.region->center.lat);
    w.WriteF64(s.region->center.lon);
    w.WriteF64(s.region->radius_m);
  }
  w.WriteBool(s.entity.has_value());
  if (s.entity.has_value()) w.WriteString(s.entity->entity_id);
}

Result<SourceSpec> DecodeSource(ByteReader& r) {
  SourceSpec s;
  const auto kind = r.ReadU8();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<std::uint8_t>(SourceSel::kAdHocNetwork)) {
    return InvalidArgument("bad source kind");
  }
  s.kind = static_cast<SourceSel>(*kind);
  auto address = r.ReadString();
  if (!address.ok()) return address.status();
  s.address = *std::move(address);
  const auto has_scope = r.ReadBool();
  if (!has_scope.ok()) return has_scope.status();
  if (*has_scope) {
    const auto nodes = r.ReadI64();
    if (!nodes.ok()) return nodes.status();
    const auto hops = r.ReadI64();
    if (!hops.ok()) return hops.status();
    s.scope = AdHocScope{static_cast<int>(*nodes), static_cast<int>(*hops)};
  }
  const auto has_region = r.ReadBool();
  if (!has_region.ok()) return has_region.status();
  if (*has_region) {
    const auto lat = r.ReadF64();
    if (!lat.ok()) return lat.status();
    const auto lon = r.ReadF64();
    if (!lon.ok()) return lon.status();
    const auto radius = r.ReadF64();
    if (!radius.ok()) return radius.status();
    s.region = RegionDest{GeoPoint{*lat, *lon}, *radius};
  }
  const auto has_entity = r.ReadBool();
  if (!has_entity.ok()) return has_entity.status();
  if (*has_entity) {
    auto entity = r.ReadString();
    if (!entity.ok()) return entity.status();
    s.entity = EntityDest{*std::move(entity)};
  }
  return s;
}

void EncodeOptionalDuration(ByteWriter& w,
                            const std::optional<SimDuration>& d) {
  w.WriteBool(d.has_value());
  if (d.has_value()) w.WriteI64(d->count());
}

Result<std::optional<SimDuration>> DecodeOptionalDuration(ByteReader& r) {
  const auto present = r.ReadBool();
  if (!present.ok()) return present.status();
  if (!*present) return std::optional<SimDuration>{};
  const auto v = r.ReadI64();
  if (!v.ok()) return v.status();
  return std::optional<SimDuration>{SimDuration{*v}};
}

}  // namespace

const char* QueryPriorityName(QueryPriority p) noexcept {
  switch (p) {
    case QueryPriority::kInteractive: return "interactive";
    case QueryPriority::kStandard: return "standard";
    case QueryPriority::kBackground: return "background";
  }
  return "?";
}

Status CxtQuery::Validate() const {
  if (select_type.empty()) {
    return InvalidArgument("SELECT clause is mandatory");
  }
  if (!duration.time.has_value() && !duration.samples.has_value()) {
    return InvalidArgument("DURATION clause is mandatory");
  }
  if (duration.time.has_value() && duration.samples.has_value()) {
    return InvalidArgument("DURATION is either a time or a sample count");
  }
  if (duration.time.has_value() && *duration.time <= SimDuration::zero()) {
    return InvalidArgument("DURATION time must be positive");
  }
  if (duration.samples.has_value() && *duration.samples <= 0) {
    return InvalidArgument("DURATION sample count must be positive");
  }
  if (every.has_value() && event.has_value()) {
    return InvalidArgument("EVERY and EVENT are mutually exclusive");
  }
  if (every.has_value() && *every <= SimDuration::zero()) {
    return InvalidArgument("EVERY period must be positive");
  }
  if (freshness.has_value() && *freshness <= SimDuration::zero()) {
    return InvalidArgument("FRESHNESS must be positive");
  }
  if (where.has_value() && where->ContainsAggregate()) {
    return InvalidArgument(
        "aggregate functions are only allowed in EVENT clauses");
  }
  for (const auto& source : from.sources) {
    if (source.kind == SourceSel::kAdHocNetwork && source.scope.has_value()) {
      const auto& sc = *source.scope;
      if (sc.num_hops < 1) {
        return InvalidArgument("adHocNetwork numHops must be >= 1");
      }
      if (!sc.all_nodes() && sc.num_nodes < 1) {
        return InvalidArgument("adHocNetwork numNodes must be >= 1 or all");
      }
    }
    if (source.kind != SourceSel::kAdHocNetwork && source.scope.has_value()) {
      return InvalidArgument("numNodes/numHops apply only to adHocNetwork");
    }
  }
  return Status::Ok();
}

std::string CxtQuery::ToString() const {
  std::string out = "SELECT " + select_type;
  if (!from.IsAuto()) out += "\nFROM " + from.ToString();
  if (where.has_value()) out += "\nWHERE " + where->ToString();
  if (freshness.has_value()) {
    out += "\nFRESHNESS " + FormatDuration(*freshness);
  }
  out += "\nDURATION " + duration.ToString();
  if (every.has_value()) out += "\nEVERY " + FormatDuration(*every);
  if (event.has_value()) out += "\nEVENT " + event->ToString();
  if (priority != QueryPriority::kStandard) {
    out += std::string("\nPRIORITY ") + QueryPriorityName(priority);
  }
  return out;
}

Result<CxtQuery> CxtQuery::Parse(std::string_view text) {
  return ParseQuery(text);
}

std::vector<std::byte> CxtQuery::Serialize() const {
  ByteWriter w;
  w.WriteString(id);
  w.WriteString(select_type);
  w.WriteU32(static_cast<std::uint32_t>(from.sources.size()));
  for (const auto& s : from.sources) EncodeSource(w, s);
  w.WriteBool(where.has_value());
  if (where.has_value()) EncodePredicate(w, *where);
  EncodeOptionalDuration(w, freshness);
  EncodeOptionalDuration(w, duration.time);
  w.WriteBool(duration.samples.has_value());
  if (duration.samples.has_value()) w.WriteI64(*duration.samples);
  EncodeOptionalDuration(w, every);
  w.WriteBool(event.has_value());
  if (event.has_value()) EncodePredicate(w, *event);
  w.WriteU8(static_cast<std::uint8_t>(priority));
  // Pad small queries up to the prototype's 205-byte object.
  if (w.size() + 4 < kQueryEnvelopeBytes) {
    const auto pad =
        static_cast<std::uint32_t>(kQueryEnvelopeBytes - w.size() - 4);
    w.WriteU32(pad);
    w.WritePadding(pad);
  } else {
    w.WriteU32(0);
  }
  return std::move(w).Take();
}

Result<CxtQuery> CxtQuery::Deserialize(const std::vector<std::byte>& wire) {
  ByteReader r{wire};
  CxtQuery q;
  auto id = r.ReadString();
  if (!id.ok()) return id.status();
  q.id = *std::move(id);
  auto select = r.ReadString();
  if (!select.ok()) return select.status();
  q.select_type = *std::move(select);
  const auto source_count = r.ReadU32();
  if (!source_count.ok()) return source_count.status();
  if (*source_count > 16) return InvalidArgument("too many sources");
  for (std::uint32_t i = 0; i < *source_count; ++i) {
    auto s = DecodeSource(r);
    if (!s.ok()) return s.status();
    q.from.sources.push_back(*std::move(s));
  }
  const auto has_where = r.ReadBool();
  if (!has_where.ok()) return has_where.status();
  if (*has_where) {
    auto p = DecodePredicate(r);
    if (!p.ok()) return p.status();
    q.where = *std::move(p);
  }
  auto freshness = DecodeOptionalDuration(r);
  if (!freshness.ok()) return freshness.status();
  q.freshness = *freshness;
  auto dtime = DecodeOptionalDuration(r);
  if (!dtime.ok()) return dtime.status();
  q.duration.time = *dtime;
  const auto has_samples = r.ReadBool();
  if (!has_samples.ok()) return has_samples.status();
  if (*has_samples) {
    const auto samples = r.ReadI64();
    if (!samples.ok()) return samples.status();
    q.duration.samples = static_cast<int>(*samples);
  }
  auto every = DecodeOptionalDuration(r);
  if (!every.ok()) return every.status();
  q.every = *every;
  const auto has_event = r.ReadBool();
  if (!has_event.ok()) return has_event.status();
  if (*has_event) {
    auto p = DecodePredicate(r);
    if (!p.ok()) return p.status();
    q.event = *std::move(p);
  }
  const auto prio = r.ReadU8();
  if (!prio.ok()) return prio.status();
  if (*prio > static_cast<std::uint8_t>(QueryPriority::kBackground)) {
    return InvalidArgument("bad priority class");
  }
  q.priority = static_cast<QueryPriority>(*prio);
  const auto pad = r.ReadU32();
  if (!pad.ok()) return pad.status();
  if (auto s = r.Skip(*pad); !s.ok()) return s;
  return q;
}

QueryBuilder::QueryBuilder(std::string select_type) {
  q_.select_type = std::move(select_type);
}

SourceSpec& QueryBuilder::LastSource() {
  if (q_.from.sources.empty()) q_.from.sources.emplace_back();
  return q_.from.sources.back();
}

QueryBuilder& QueryBuilder::FromAuto() {
  q_.from.sources.clear();
  return *this;
}

QueryBuilder& QueryBuilder::FromIntSensor(std::string address) {
  SourceSpec s;
  s.kind = SourceSel::kIntSensor;
  s.address = std::move(address);
  q_.from.sources.push_back(std::move(s));
  return *this;
}

QueryBuilder& QueryBuilder::FromExtInfra(std::string address) {
  SourceSpec s;
  s.kind = SourceSel::kExtInfra;
  s.address = std::move(address);
  q_.from.sources.push_back(std::move(s));
  return *this;
}

QueryBuilder& QueryBuilder::FromAdHoc(int num_nodes, int num_hops) {
  SourceSpec s;
  s.kind = SourceSel::kAdHocNetwork;
  s.scope = AdHocScope{num_nodes, num_hops};
  q_.from.sources.push_back(std::move(s));
  return *this;
}

QueryBuilder& QueryBuilder::TargetRegion(GeoPoint center, double radius_m) {
  LastSource().region = RegionDest{center, radius_m};
  return *this;
}

QueryBuilder& QueryBuilder::TargetEntity(std::string entity_id) {
  LastSource().entity = EntityDest{std::move(entity_id)};
  return *this;
}

QueryBuilder& QueryBuilder::Where(Comparison c) {
  return WherePredicate(Predicate::Leaf(std::move(c)));
}

QueryBuilder& QueryBuilder::WhereMeta(std::string field, CompareOp op,
                                      CxtValue literal) {
  Comparison c;
  c.field = std::move(field);
  c.op = op;
  c.literal = std::move(literal);
  return Where(std::move(c));
}

QueryBuilder& QueryBuilder::WherePredicate(Predicate p) {
  if (!q_.where.has_value()) {
    q_.where = std::move(p);
  } else {
    std::vector<Predicate> children;
    children.push_back(*std::move(q_.where));
    children.push_back(std::move(p));
    q_.where = Predicate::And(std::move(children));
  }
  return *this;
}

QueryBuilder& QueryBuilder::Freshness(SimDuration d) {
  q_.freshness = d;
  return *this;
}

QueryBuilder& QueryBuilder::For(SimDuration lifetime) {
  q_.duration.time = lifetime;
  q_.duration.samples.reset();
  return *this;
}

QueryBuilder& QueryBuilder::ForSamples(int samples) {
  q_.duration.samples = samples;
  q_.duration.time.reset();
  return *this;
}

QueryBuilder& QueryBuilder::Every(SimDuration period) {
  q_.every = period;
  return *this;
}

QueryBuilder& QueryBuilder::Event(Predicate p) {
  q_.event = std::move(p);
  return *this;
}

QueryBuilder& QueryBuilder::EventAggregate(AggregateFn fn, std::string type,
                                           CompareOp op, double threshold) {
  Comparison c;
  c.aggregate = fn;
  c.field = std::move(type);
  c.op = op;
  c.literal = threshold;
  return Event(Predicate::Leaf(std::move(c)));
}

QueryBuilder& QueryBuilder::Priority(QueryPriority p) {
  q_.priority = p;
  return *this;
}

CxtQuery QueryBuilder::Build() const {
  if (const Status s = q_.Validate(); !s.ok()) {
    throw std::invalid_argument("QueryBuilder: " + s.ToString());
  }
  return q_;
}

}  // namespace contory::query
