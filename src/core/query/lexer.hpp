// Tokenizer for the context query language.
//
// Keywords are recognized case-insensitively (the paper writes them
// uppercase); identifiers, numbers (with optional time units handled by
// the parser), quoted strings, and punctuation round out the grammar.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace contory::query {

enum class TokenKind : std::uint8_t {
  kKeyword,     // SELECT FROM WHERE FRESHNESS DURATION EVERY EVENT
                // AND OR NOT AVG MIN MAX COUNT SUM ALL
  kIdentifier,  // temperature, accuracy, adHocNetwork, sec, ...
  kNumber,      // 30, 0.2, -5
  kString,      // "friend-7"
  kSymbol,      // ( ) , = != < > <= >= @
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // canonical text (keywords uppercased)
  double number = 0.0; // when kind == kNumber
  std::size_t offset = 0;  // position in the input, for error messages

  [[nodiscard]] bool IsKeyword(std::string_view kw) const noexcept {
    return kind == TokenKind::kKeyword && text == kw;
  }
  [[nodiscard]] bool IsSymbol(std::string_view s) const noexcept {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// Tokenizes `input`; the last token is always kEnd. Fails on characters
/// outside the language or unterminated strings.
[[nodiscard]] Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace contory::query
