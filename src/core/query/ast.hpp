// Abstract syntax of the Contory context query language (Sec. 4.2):
//
//   SELECT <context name>              (mandatory)
//   FROM <source>
//   WHERE <predicate clause>
//   FRESHNESS <time>
//   DURATION <duration>                (mandatory; time or sample count)
//   EVERY <time> | EVENT <predicate>   (mutually exclusive)
//
// All AST nodes are value types (copyable) because query merging clones
// and rewrites clauses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "core/model/cxt_value.hpp"

namespace contory::query {

// --- Predicates (WHERE / EVENT) -------------------------------------------

enum class CompareOp : std::uint8_t { kEq, kNe, kLt, kGt, kLe, kGe };
[[nodiscard]] const char* CompareOpName(CompareOp op) noexcept;

/// Aggregate functions usable in EVENT clauses ("EVENT AVG(temperature)>25").
enum class AggregateFn : std::uint8_t { kNone, kAvg, kMin, kMax, kCount, kSum };
[[nodiscard]] const char* AggregateFnName(AggregateFn fn) noexcept;

/// One comparison: `[AGG(]field[)] op literal`. `field` is a metadata name
/// ("accuracy"), the pseudo-field "value", or a context type name (which
/// also resolves to the item's value when the types match).
struct Comparison {
  AggregateFn aggregate = AggregateFn::kNone;
  std::string field;
  CompareOp op = CompareOp::kEq;
  CxtValue literal;

  [[nodiscard]] std::string ToString() const;
  friend bool operator==(const Comparison&, const Comparison&) = default;
};

/// Boolean expression tree over comparisons.
struct Predicate {
  enum class Kind : std::uint8_t { kComparison, kAnd, kOr, kNot };

  Kind kind = Kind::kComparison;
  Comparison comparison;             // when kind == kComparison
  std::vector<Predicate> children;   // kAnd/kOr: >=2; kNot: exactly 1

  [[nodiscard]] static Predicate Leaf(Comparison c) {
    Predicate p;
    p.comparison = std::move(c);
    return p;
  }
  [[nodiscard]] static Predicate And(std::vector<Predicate> children);
  [[nodiscard]] static Predicate Or(std::vector<Predicate> children);
  [[nodiscard]] static Predicate Not(Predicate child);

  /// True when any comparison in the tree uses an aggregate function.
  [[nodiscard]] bool ContainsAggregate() const;

  [[nodiscard]] std::string ToString() const;
  friend bool operator==(const Predicate&, const Predicate&) = default;
};

// --- FROM clause ----------------------------------------------------------

/// Which provisioning mechanism a source spec names.
enum class SourceSel : std::uint8_t {
  kAuto,          // FROM unspecified: middleware chooses ("max transparency")
  kIntSensor,
  kExtInfra,
  kAdHocNetwork,
};
[[nodiscard]] const char* SourceSelName(SourceSel s) noexcept;

/// adHocNetwork(numNodes, numHops): "all nodes that can be discovered
/// (numNodes=all) or the first k nodes found within a distance lower than
/// j hops".
struct AdHocScope {
  static constexpr int kAllNodes = -1;
  int num_nodes = kAllNodes;
  int num_hops = 1;

  [[nodiscard]] bool all_nodes() const noexcept {
    return num_nodes == kAllNodes;
  }
  friend bool operator==(const AdHocScope&, const AdHocScope&) = default;
};

/// "the coordinates of a region to be monitored (e.g., next exit on the
/// highway)".
struct RegionDest {
  GeoPoint center;
  double radius_m = 0.0;
  friend bool operator==(const RegionDest&, const RegionDest&) = default;
};

/// "the identifier of an entity (e.g., to know when a friend is nearby)".
struct EntityDest {
  std::string entity_id;
  friend bool operator==(const EntityDest&, const EntityDest&) = default;
};

struct SourceSpec {
  SourceSel kind = SourceSel::kAuto;
  /// Specific source address (sensor name, infrastructure host).
  std::string address;
  std::optional<AdHocScope> scope;    // adHocNetwork only
  std::optional<RegionDest> region;   // destination: region to monitor
  std::optional<EntityDest> entity;   // destination: entity of interest

  [[nodiscard]] std::string ToString() const;
  friend bool operator==(const SourceSpec&, const SourceSpec&) = default;
};

/// Empty sources = fully transparent provisioning (middleware decides).
/// Multiple sources = the query is assigned to multiple facades.
struct FromClause {
  std::vector<SourceSpec> sources;

  [[nodiscard]] bool IsAuto() const noexcept { return sources.empty(); }
  [[nodiscard]] std::string ToString() const;
  friend bool operator==(const FromClause&, const FromClause&) = default;
};

// --- DURATION clause -------------------------------------------------------

/// "DURATION specifies the query lifetime as time (e.g., 1 hour) or as the
/// number of samples that must be collected in each round (e.g., 50
/// samples)." Exactly one of the two is set.
struct DurationClause {
  std::optional<SimDuration> time;
  std::optional<int> samples;

  [[nodiscard]] std::string ToString() const;
  friend bool operator==(const DurationClause&, const DurationClause&) =
      default;
};

/// How the application interacts with the query's results.
enum class InteractionMode : std::uint8_t {
  kOnDemand,   // neither EVERY nor EVENT: one round of results
  kPeriodic,   // EVERY <time>
  kEventBased, // EVENT <predicate>
};
[[nodiscard]] const char* InteractionModeName(InteractionMode m) noexcept;

}  // namespace contory::query
