#include "core/query/parser.hpp"

#include <cctype>

#include "core/query/lexer.hpp"

namespace contory::query {
namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<CxtQuery> Query() {
    CxtQuery q;
    if (auto s = Expect(TokenKind::kKeyword, "SELECT"); !s.ok()) return s;
    auto type = ExpectIdentifier("context type");
    if (!type.ok()) return type.status();
    q.select_type = *std::move(type);

    if (Accept(TokenKind::kKeyword, "FROM")) {
      auto from = From();
      if (!from.ok()) return from.status();
      q.from = *std::move(from);
    }
    if (Accept(TokenKind::kKeyword, "WHERE")) {
      auto where = OrExpr();
      if (!where.ok()) return where.status();
      q.where = *std::move(where);
    }
    if (Accept(TokenKind::kKeyword, "FRESHNESS")) {
      auto d = Timespan();
      if (!d.ok()) return d.status();
      q.freshness = *d;
    }
    if (auto s = Expect(TokenKind::kKeyword, "DURATION"); !s.ok()) return s;
    {
      // DURATION <time> or DURATION <n> samples.
      if (Peek().kind != TokenKind::kNumber) {
        return Error("DURATION expects a number");
      }
      const double n = Peek().number;
      Advance();
      if (Peek().kind == TokenKind::kIdentifier &&
          (Lower(Peek().text) == "samples" ||
           Lower(Peek().text) == "sample")) {
        Advance();
        q.duration.samples = static_cast<int>(n);
      } else {
        auto d = TimespanTail(n);
        if (!d.ok()) return d.status();
        q.duration.time = *d;
      }
    }
    if (Accept(TokenKind::kKeyword, "EVERY")) {
      auto d = Timespan();
      if (!d.ok()) return d.status();
      q.every = *d;
    } else if (Accept(TokenKind::kKeyword, "EVENT")) {
      auto p = OrExpr();
      if (!p.ok()) return p.status();
      q.event = *std::move(p);
    }
    if (Accept(TokenKind::kKeyword, "PRIORITY")) {
      auto level = ExpectIdentifier("priority class");
      if (!level.ok()) return level.status();
      const std::string lower = Lower(*level);
      if (lower == "interactive") {
        q.priority = QueryPriority::kInteractive;
      } else if (lower == "standard") {
        q.priority = QueryPriority::kStandard;
      } else if (lower == "background") {
        q.priority = QueryPriority::kBackground;
      } else {
        return Error("unknown priority class '" + *level + "'");
      }
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    if (auto s = q.Validate(); !s.ok()) return s;
    return q;
  }

  Result<Predicate> StandalonePredicate() {
    auto p = OrExpr();
    if (!p.ok()) return p.status();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return p;
  }

 private:
  [[nodiscard]] const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  [[nodiscard]] Status Error(const std::string& what) const {
    const Token& t = Peek();
    std::string got = t.kind == TokenKind::kEnd ? "end of input"
                                                : "'" + t.text + "'";
    return InvalidArgument(what + " (got " + got + " at offset " +
                           std::to_string(t.offset) + ")");
  }

  bool Accept(TokenKind kind, std::string_view text) {
    if (Peek().kind == kind && Peek().text == text) {
      Advance();
      return true;
    }
    return false;
  }

  [[nodiscard]] Status Expect(TokenKind kind, std::string_view text) {
    if (!Accept(kind, text)) {
      return Error("expected " + std::string{text});
    }
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + what);
    }
    std::string out = Peek().text;
    Advance();
    return out;
  }

  // timespan := number [unit]
  Result<SimDuration> Timespan() {
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected a time value");
    }
    const double n = Peek().number;
    Advance();
    return TimespanTail(n);
  }

  Result<SimDuration> TimespanTail(double n) {
    double scale_to_us = 1e6;  // default unit: seconds
    // "min" lexes as the MIN aggregate keyword; accept keyword tokens as
    // unit candidates too.
    if (Peek().kind == TokenKind::kIdentifier ||
        Peek().kind == TokenKind::kKeyword) {
      const std::string unit = Lower(Peek().text);
      bool known = true;
      if (unit == "us" || unit == "usec") {
        scale_to_us = 1.0;
      } else if (unit == "ms" || unit == "msec" || unit == "millis") {
        scale_to_us = 1e3;
      } else if (unit == "s" || unit == "sec" || unit == "second" ||
                 unit == "seconds") {
        scale_to_us = 1e6;
      } else if (unit == "min" || unit == "minute" || unit == "minutes") {
        scale_to_us = 60e6;
      } else if (unit == "h" || unit == "hour" || unit == "hours") {
        scale_to_us = 3600e6;
      } else {
        known = false;
      }
      if (known) Advance();
    }
    return SimDuration{static_cast<std::int64_t>(n * scale_to_us)};
  }

  // source := kind args? dest*
  Result<FromClause> From() {
    FromClause from;
    while (true) {
      auto source = Source();
      if (!source.ok()) return source.status();
      from.sources.push_back(*std::move(source));
      if (!Accept(TokenKind::kSymbol, ",")) break;
    }
    return from;
  }

  Result<SourceSpec> Source() {
    auto name = ExpectIdentifier("context source");
    if (!name.ok()) return name.status();
    const std::string lower = Lower(*name);
    SourceSpec spec;
    if (lower == "intsensor") {
      spec.kind = SourceSel::kIntSensor;
    } else if (lower == "extinfra") {
      spec.kind = SourceSel::kExtInfra;
    } else if (lower == "adhocnetwork") {
      spec.kind = SourceSel::kAdHocNetwork;
      spec.scope = AdHocScope{};  // default: all nodes, 1 hop
    } else {
      return Error("unknown context source '" + *name + "'");
    }

    if (Accept(TokenKind::kSymbol, "(")) {
      if (spec.kind == SourceSel::kAdHocNetwork) {
        // (all|k [, hops])
        AdHocScope scope;
        if (Peek().kind == TokenKind::kIdentifier &&
            Lower(Peek().text) == "all") {
          Advance();
          scope.num_nodes = AdHocScope::kAllNodes;
        } else if (Peek().kind == TokenKind::kNumber) {
          scope.num_nodes = static_cast<int>(Peek().number);
          Advance();
        } else {
          return Error("adHocNetwork expects (all|k[, hops])");
        }
        if (Accept(TokenKind::kSymbol, ",")) {
          if (Peek().kind != TokenKind::kNumber) {
            return Error("adHocNetwork hop count must be a number");
          }
          scope.num_hops = static_cast<int>(Peek().number);
          Advance();
        }
        spec.scope = scope;
      } else {
        // (address)
        if (Peek().kind == TokenKind::kString ||
            Peek().kind == TokenKind::kIdentifier) {
          spec.address = Peek().text;
          Advance();
        } else {
          return Error("source address must be a string or identifier");
        }
      }
      if (auto s = Expect(TokenKind::kSymbol, ")"); !s.ok()) return s;
    }

    // Optional destination annotations: region(lat, lon, radius) and/or
    // entity("id").
    while (Peek().kind == TokenKind::kIdentifier) {
      const std::string dest = Lower(Peek().text);
      if (dest == "region") {
        Advance();
        if (auto s = Expect(TokenKind::kSymbol, "("); !s.ok()) return s;
        double vals[3];
        for (int i = 0; i < 3; ++i) {
          if (Peek().kind != TokenKind::kNumber) {
            return Error("region expects (lat, lon, radius_m)");
          }
          vals[i] = Peek().number;
          Advance();
          if (i < 2) {
            if (auto s = Expect(TokenKind::kSymbol, ","); !s.ok()) return s;
          }
        }
        if (auto s = Expect(TokenKind::kSymbol, ")"); !s.ok()) return s;
        spec.region = RegionDest{GeoPoint{vals[0], vals[1]}, vals[2]};
      } else if (dest == "entity") {
        Advance();
        if (auto s = Expect(TokenKind::kSymbol, "("); !s.ok()) return s;
        if (Peek().kind != TokenKind::kString) {
          return Error("entity expects a quoted identifier");
        }
        spec.entity = EntityDest{Peek().text};
        Advance();
        if (auto s = Expect(TokenKind::kSymbol, ")"); !s.ok()) return s;
      } else {
        break;
      }
    }
    return spec;
  }

  // orExpr := andExpr (OR andExpr)*
  Result<Predicate> OrExpr() {
    auto lhs = AndExpr();
    if (!lhs.ok()) return lhs;
    std::vector<Predicate> terms;
    terms.push_back(*std::move(lhs));
    while (Accept(TokenKind::kKeyword, "OR")) {
      auto rhs = AndExpr();
      if (!rhs.ok()) return rhs;
      terms.push_back(*std::move(rhs));
    }
    if (terms.size() == 1) return std::move(terms.front());
    return Predicate::Or(std::move(terms));
  }

  Result<Predicate> AndExpr() {
    auto lhs = Unary();
    if (!lhs.ok()) return lhs;
    std::vector<Predicate> terms;
    terms.push_back(*std::move(lhs));
    while (Accept(TokenKind::kKeyword, "AND")) {
      auto rhs = Unary();
      if (!rhs.ok()) return rhs;
      terms.push_back(*std::move(rhs));
    }
    if (terms.size() == 1) return std::move(terms.front());
    return Predicate::And(std::move(terms));
  }

  Result<Predicate> Unary() {
    if (Accept(TokenKind::kKeyword, "NOT")) {
      auto child = Unary();
      if (!child.ok()) return child;
      return Predicate::Not(*std::move(child));
    }
    if (Accept(TokenKind::kSymbol, "(")) {
      auto inner = OrExpr();
      if (!inner.ok()) return inner;
      if (auto s = Expect(TokenKind::kSymbol, ")"); !s.ok()) return s;
      return inner;
    }
    return ComparisonExpr();
  }

  Result<Predicate> ComparisonExpr() {
    Comparison cmp;
    // Aggregate?
    if (Peek().kind == TokenKind::kKeyword) {
      const std::string& kw = Peek().text;
      AggregateFn fn = AggregateFn::kNone;
      if (kw == "AVG") fn = AggregateFn::kAvg;
      else if (kw == "MIN") fn = AggregateFn::kMin;
      else if (kw == "MAX") fn = AggregateFn::kMax;
      else if (kw == "COUNT") fn = AggregateFn::kCount;
      else if (kw == "SUM") fn = AggregateFn::kSum;
      if (fn != AggregateFn::kNone) {
        Advance();
        cmp.aggregate = fn;
        if (auto s = Expect(TokenKind::kSymbol, "("); !s.ok()) return s;
        auto field = ExpectIdentifier("aggregate argument");
        if (!field.ok()) return field.status();
        cmp.field = *std::move(field);
        if (auto s = Expect(TokenKind::kSymbol, ")"); !s.ok()) return s;
      }
    }
    if (cmp.aggregate == AggregateFn::kNone) {
      auto field = ExpectIdentifier("predicate field");
      if (!field.ok()) return field.status();
      cmp.field = *std::move(field);
    }

    // Operator.
    const Token& op_tok = Peek();
    if (op_tok.kind != TokenKind::kSymbol) return Error("expected operator");
    if (op_tok.text == "=") cmp.op = CompareOp::kEq;
    else if (op_tok.text == "!=") cmp.op = CompareOp::kNe;
    else if (op_tok.text == "<") cmp.op = CompareOp::kLt;
    else if (op_tok.text == ">") cmp.op = CompareOp::kGt;
    else if (op_tok.text == "<=") cmp.op = CompareOp::kLe;
    else if (op_tok.text == ">=") cmp.op = CompareOp::kGe;
    else return Error("unknown operator '" + op_tok.text + "'");
    Advance();

    // Literal.
    const Token& lit = Peek();
    if (lit.kind == TokenKind::kNumber) {
      cmp.literal = lit.number;
      Advance();
    } else if (lit.kind == TokenKind::kString) {
      cmp.literal = lit.text;
      Advance();
    } else if (lit.kind == TokenKind::kIdentifier) {
      const std::string word = Lower(lit.text);
      if (word == "true") {
        cmp.literal = true;
      } else if (word == "false") {
        cmp.literal = false;
      } else {
        // Bare-word literal: "trusted", "walking", "low" — string value.
        cmp.literal = lit.text;
      }
      Advance();
    } else {
      return Error("expected a literal value");
    }
    return Predicate::Leaf(std::move(cmp));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<CxtQuery> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser{*std::move(tokens)};
  return parser.Query();
}

Result<Predicate> ParsePredicate(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser{*std::move(tokens)};
  return parser.StandalonePredicate();
}

}  // namespace contory::query
