#include "core/query/predicate.hpp"

#include <algorithm>
#include <cctype>

namespace contory::query {
namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

/// Maps symbolic trust/privacy literals to their ordinal.
Result<double> SymbolicLevel(const std::string& field,
                             const std::string& word) {
  const std::string w = Lower(word);
  if (field == "trust") {
    if (w == "untrusted") return 0.0;
    if (w == "unknown") return 1.0;
    if (w == "trusted") return 2.0;
    return InvalidArgument("unknown trust level '" + word + "'");
  }
  if (w == "public") return 0.0;
  if (w == "protected") return 1.0;
  if (w == "private") return 2.0;
  return InvalidArgument("unknown privacy level '" + word + "'");
}

Result<bool> ApplyOp(CompareOp op, const CxtValue& lhs,
                     const CxtValue& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return !(lhs == rhs);
    default:
      break;
  }
  const auto cmp = lhs.Compare(rhs);
  if (!cmp.ok()) return cmp.status();
  switch (op) {
    case CompareOp::kLt: return *cmp < 0;
    case CompareOp::kGt: return *cmp > 0;
    case CompareOp::kLe: return *cmp <= 0;
    case CompareOp::kGe: return *cmp >= 0;
    default: return Internal("unreachable compare op");
  }
}

Result<bool> EvalComparison(const Comparison& cmp, const CxtItem& item) {
  if (cmp.aggregate != AggregateFn::kNone) {
    return InvalidArgument(
        "aggregate '" + cmp.ToString() + "' is not allowed here");
  }
  // Value fields.
  if (cmp.field == "value" || cmp.field == item.type) {
    return ApplyOp(cmp.op, item.value, cmp.literal);
  }
  if (cmp.field == "type") {
    return ApplyOp(cmp.op, CxtValue{item.type}, cmp.literal);
  }
  // Metadata fields.
  if (IsMetadataField(cmp.field)) {
    const auto lhs = item.metadata.GetNumeric(cmp.field);
    if (!lhs.ok()) {
      if (lhs.status().code() == StatusCode::kNotFound) {
        return false;  // unset quality field: the item cannot qualify
      }
      return lhs.status();
    }
    CxtValue rhs = cmp.literal;
    if ((cmp.field == "trust" || cmp.field == "privacy") &&
        cmp.literal.is_string()) {
      const auto level =
          SymbolicLevel(cmp.field, cmp.literal.AsString().value());
      if (!level.ok()) return level.status();
      rhs = *level;
    }
    return ApplyOp(cmp.op, CxtValue{*lhs}, rhs);
  }
  // A field naming a *different* context type than the item's: the item
  // simply does not match (a merged query's post-extraction relies on
  // this rather than erroring).
  return false;
}

}  // namespace

Result<bool> EvalWhere(const Predicate& predicate, const CxtItem& item) {
  switch (predicate.kind) {
    case Predicate::Kind::kComparison:
      return EvalComparison(predicate.comparison, item);
    case Predicate::Kind::kNot: {
      const auto inner = EvalWhere(predicate.children.front(), item);
      if (!inner.ok()) return inner;
      return !*inner;
    }
    case Predicate::Kind::kAnd: {
      for (const auto& child : predicate.children) {
        const auto v = EvalWhere(child, item);
        if (!v.ok()) return v;
        if (!*v) return false;
      }
      return true;
    }
    case Predicate::Kind::kOr: {
      for (const auto& child : predicate.children) {
        const auto v = EvalWhere(child, item);
        if (!v.ok()) return v;
        if (*v) return true;
      }
      return false;
    }
  }
  return Internal("unreachable predicate kind");
}

Result<double> EvalAggregate(AggregateFn fn, const std::string& type,
                             std::span<const CxtItem> window) {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
  for (const auto& item : window) {
    if (item.type != type) continue;
    if (fn == AggregateFn::kCount) {
      ++count;
      continue;
    }
    const auto v = item.value.AsNumber();
    if (!v.ok()) return v.status();
    if (count == 0) {
      min = max = *v;
    } else {
      min = std::min(min, *v);
      max = std::max(max, *v);
    }
    sum += *v;
    ++count;
  }
  switch (fn) {
    case AggregateFn::kCount:
      return static_cast<double>(count);
    case AggregateFn::kSum:
      return sum;
    case AggregateFn::kAvg:
      if (count == 0) return NotFound("no items of type '" + type + "'");
      return sum / static_cast<double>(count);
    case AggregateFn::kMin:
      if (count == 0) return NotFound("no items of type '" + type + "'");
      return min;
    case AggregateFn::kMax:
      if (count == 0) return NotFound("no items of type '" + type + "'");
      return max;
    case AggregateFn::kNone:
      return InvalidArgument("kNone is not an aggregate");
  }
  return Internal("unreachable aggregate fn");
}

Result<bool> EvalEvent(const Predicate& predicate,
                       std::span<const CxtItem> window) {
  switch (predicate.kind) {
    case Predicate::Kind::kComparison: {
      const auto& cmp = predicate.comparison;
      if (cmp.aggregate == AggregateFn::kNone) {
        if (window.empty()) return false;
        return EvalWhere(predicate, window.back());
      }
      const auto value = EvalAggregate(cmp.aggregate, cmp.field, window);
      if (!value.ok()) {
        if (value.status().code() == StatusCode::kNotFound) return false;
        return value.status();
      }
      const auto rhs = cmp.literal.AsNumber();
      if (!rhs.ok()) return rhs.status();
      switch (cmp.op) {
        case CompareOp::kEq: return *value == *rhs;
        case CompareOp::kNe: return *value != *rhs;
        case CompareOp::kLt: return *value < *rhs;
        case CompareOp::kGt: return *value > *rhs;
        case CompareOp::kLe: return *value <= *rhs;
        case CompareOp::kGe: return *value >= *rhs;
      }
      return Internal("unreachable compare op");
    }
    case Predicate::Kind::kNot: {
      const auto inner = EvalEvent(predicate.children.front(), window);
      if (!inner.ok()) return inner;
      return !*inner;
    }
    case Predicate::Kind::kAnd: {
      for (const auto& child : predicate.children) {
        const auto v = EvalEvent(child, window);
        if (!v.ok()) return v;
        if (!*v) return false;
      }
      return true;
    }
    case Predicate::Kind::kOr: {
      for (const auto& child : predicate.children) {
        const auto v = EvalEvent(child, window);
        if (!v.ok()) return v;
        if (*v) return true;
      }
      return false;
    }
  }
  return Internal("unreachable predicate kind");
}

}  // namespace contory::query
