// Predicate evaluation: WHERE over a single context item, EVENT over the
// window of items a provider has collected.
//
// Field resolution rules:
//  * "value", or the item's own type name, resolves to the item's value
//    ("WHERE temperature>25" and "WHERE value>25" are equivalent for a
//    temperature query);
//  * "type" resolves to the item's type string;
//  * metadata names (accuracy, precision, correctness, completeness,
//    privacy, trust) resolve to the item's metadata — an *unset* metadata
//    field makes the comparison false (the item cannot demonstrate the
//    required quality), while an *unknown* field name is an error.
//  * trust/privacy literals may be symbolic ("trusted", "public"); they
//    are mapped to their ordinal before comparison.
//
// Aggregates (EVENT only) are computed over the items in the window whose
// type matches the aggregate argument; an empty window never triggers.
#pragma once

#include <span>

#include "common/status.hpp"
#include "core/model/cxt_item.hpp"
#include "core/query/ast.hpp"

namespace contory::query {

/// Evaluates a WHERE-style predicate (no aggregates) against one item.
[[nodiscard]] Result<bool> EvalWhere(const Predicate& predicate,
                                     const CxtItem& item);

/// Evaluates an EVENT predicate against the collected window. Non-aggregate
/// comparisons inside an EVENT clause are evaluated against the most recent
/// item of the window.
[[nodiscard]] Result<bool> EvalEvent(const Predicate& predicate,
                                     std::span<const CxtItem> window);

/// Computes one aggregate over the window (exposed for tests/tools).
[[nodiscard]] Result<double> EvalAggregate(AggregateFn fn,
                                           const std::string& type,
                                           std::span<const CxtItem> window);

}  // namespace contory::query
