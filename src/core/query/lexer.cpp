#include "core/query/lexer.hpp"

#include <array>
#include <cctype>
#include <cstdlib>

namespace contory::query {
namespace {

constexpr std::array<const char*, 16> kKeywords = {
    "SELECT", "FROM",  "WHERE", "FRESHNESS", "DURATION",
    "EVERY",  "EVENT", "AND",   "OR",        "NOT",
    "AVG",    "MIN",   "MAX",   "COUNT",     "SUM",
    "PRIORITY"};

std::string ToUpper(std::string_view s) {
  std::string out{s};
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

bool IsIdentStart(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      const std::string_view word = input.substr(i, j - i);
      const std::string upper = ToUpper(word);
      Token t;
      t.offset = start;
      bool is_keyword = false;
      for (const char* kw : kKeywords) {
        if (upper == kw) {
          is_keyword = true;
          break;
        }
      }
      if (is_keyword) {
        t.kind = TokenKind::kKeyword;
        t.text = upper;
      } else {
        t.kind = TokenKind::kIdentifier;
        t.text = std::string{word};
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) != 0) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) != 0)) {
      std::size_t j = i + 1;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) !=
                           0 ||
                       input[j] == '.')) {
        ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.offset = start;
      t.text = std::string{input.substr(i, j - i)};
      t.number = std::strtod(t.text.c_str(), nullptr);
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && input[j] != '"') ++j;
      if (j == n) {
        return InvalidArgument("unterminated string literal at offset " +
                               std::to_string(start));
      }
      Token t;
      t.kind = TokenKind::kString;
      t.offset = start;
      t.text = std::string{input.substr(i + 1, j - i - 1)};
      tokens.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      const std::string_view two = input.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        Token t;
        t.kind = TokenKind::kSymbol;
        t.offset = start;
        t.text = two == "<>" ? "!=" : std::string{two};
        tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
    }
    if (c == '(' || c == ')' || c == ',' || c == '=' || c == '<' ||
        c == '>' || c == '@') {
      Token t;
      t.kind = TokenKind::kSymbol;
      t.offset = start;
      t.text = std::string(1, c);
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return InvalidArgument("unexpected character '" + std::string(1, c) +
                           "' at offset " + std::to_string(start));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace contory::query
