// Query aggregation: merging and post-extraction (Sec. 4.3).
//
// "the Facade performs query aggregation. This process consists of two
// sub-processes: query merging and post-extraction. ... The merge function
// implements a simplified version of the clustering algorithm defined in
// [Crespo et al.]. This algorithm builds on the definition of a 'distance'
// metric between queries. The algorithm computes the distance between each
// pair of queries and if it is below a certain threshold, the two queries
// are put in the same cluster. In our design, for simplicity, we put in
// the same cluster queries with the same SELECT clause."
//
// The merged query must *subsume* both inputs so that post-extraction can
// recover each original's results:
//   FROM      -> widest scope (all > k nodes; max hops; union of sources)
//   WHERE     -> kept only when identical, else dropped (post-extraction
//                re-applies each original's WHERE)
//   FRESHNESS -> loosest (max)
//   DURATION  -> longest (max)
//   EVERY     -> fastest rate (min), per the paper's example
//   EVENT     -> queries with different EVENT clauses do not merge
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "core/model/cxt_item.hpp"
#include "core/query/query.hpp"

namespace contory::query {

/// Tuning of the clustering distance. The default reproduces the paper's
/// simplification: same SELECT => distance 0 (always below threshold).
struct MergePolicy {
  /// Queries at distance <= threshold merge.
  double threshold = 1.0;
  /// Weight of the freshness difference (normalized ratio).
  double w_freshness = 0.0;
  /// Weight of the EVERY-rate difference (normalized ratio).
  double w_every = 0.0;
  /// Weight of the FROM-scope difference (hops/nodes deltas).
  double w_scope = 0.0;
};

/// Distance between two queries. +infinity when they are structurally
/// unmergeable (different SELECT, incompatible modes, different EVENT or
/// destinations). Otherwise a weighted sum of clause differences per
/// `policy` (0.0 under the default paper policy).
[[nodiscard]] double QueryDistance(const CxtQuery& a, const CxtQuery& b,
                                   const MergePolicy& policy = {});

/// True when the two queries would land in the same cluster.
[[nodiscard]] bool Mergeable(const CxtQuery& a, const CxtQuery& b,
                             const MergePolicy& policy = {});

/// q3 = merge(q1, q2). Fails when !Mergeable. The result keeps q1's id
/// with a "+<q2 id>" suffix so logs show the lineage.
[[nodiscard]] Result<CxtQuery> Merge(const CxtQuery& a, const CxtQuery& b,
                                     const MergePolicy& policy = {});

/// Post-extraction: does `item`, produced by a merged query, match the
/// *original* query `q` (WHERE + FRESHNESS at time `now`)?
[[nodiscard]] bool PostExtract(const CxtQuery& q, const CxtItem& item,
                               SimTime now);

/// Greedy clustering of the index set {0..queries.size()-1}: each query
/// joins the first cluster whose representative is within threshold.
/// Deterministic given input order.
[[nodiscard]] std::vector<std::vector<std::size_t>> ClusterQueries(
    std::span<const CxtQuery> queries, const MergePolicy& policy = {});

/// Merges a whole cluster into one query (left fold).
[[nodiscard]] Result<CxtQuery> MergeAll(std::span<const CxtQuery> queries,
                                        const MergePolicy& policy = {});

}  // namespace contory::query
