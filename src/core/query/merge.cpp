#include "core/query/merge.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/query/predicate.hpp"

namespace contory::query {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Are the FROM clauses compatible for merging? Destinations (region/
/// entity) must match exactly; source kinds must overlap structurally.
bool FromCompatible(const FromClause& a, const FromClause& b) {
  if (a.IsAuto() || b.IsAuto()) return a.IsAuto() == b.IsAuto();
  if (a.sources.size() != b.sources.size()) return false;
  for (std::size_t i = 0; i < a.sources.size(); ++i) {
    const auto& sa = a.sources[i];
    const auto& sb = b.sources[i];
    if (sa.kind != sb.kind) return false;
    if (sa.address != sb.address) return false;
    if (sa.region != sb.region) return false;
    if (sa.entity != sb.entity) return false;
    // scopes may differ: that is exactly what merging widens.
  }
  return true;
}

double ScopeDelta(const FromClause& a, const FromClause& b) {
  double delta = 0.0;
  const std::size_t n = std::min(a.sources.size(), b.sources.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& sa = a.sources[i].scope;
    const auto& sb = b.sources[i].scope;
    if (!sa.has_value() || !sb.has_value()) continue;
    delta += std::abs(sa->num_hops - sb->num_hops);
    const int na = sa->all_nodes() ? 1'000 : sa->num_nodes;
    const int nb = sb->all_nodes() ? 1'000 : sb->num_nodes;
    delta += std::abs(na - nb) / 100.0;
  }
  return delta;
}

double RatioDelta(std::optional<SimDuration> a, std::optional<SimDuration> b) {
  if (!a.has_value() && !b.has_value()) return 0.0;
  if (!a.has_value() || !b.has_value()) return 1.0;
  const double x = static_cast<double>(a->count());
  const double y = static_cast<double>(b->count());
  if (x == 0.0 || y == 0.0) return 1.0;
  return std::abs(x - y) / std::max(x, y);
}

}  // namespace

double QueryDistance(const CxtQuery& a, const CxtQuery& b,
                     const MergePolicy& policy) {
  // Structural gates: beyond these, queries never merge.
  if (a.select_type != b.select_type) return kInf;
  if (a.event != b.event) return kInf;  // different EVENT conditions
  // On-demand merges with on-demand, periodic with periodic; an
  // event-based query only merges with an identical-EVENT one (above).
  if (a.mode() != b.mode()) return kInf;
  if (!FromCompatible(a.from, b.from)) return kInf;

  return policy.w_freshness * RatioDelta(a.freshness, b.freshness) +
         policy.w_every * RatioDelta(a.every, b.every) +
         policy.w_scope * ScopeDelta(a.from, b.from);
}

bool Mergeable(const CxtQuery& a, const CxtQuery& b,
               const MergePolicy& policy) {
  return QueryDistance(a, b, policy) <= policy.threshold;
}

Result<CxtQuery> Merge(const CxtQuery& a, const CxtQuery& b,
                       const MergePolicy& policy) {
  if (!Mergeable(a, b, policy)) {
    return FailedPrecondition("queries '" + a.id + "' and '" + b.id +
                              "' are not in the same cluster");
  }
  CxtQuery m = a;
  m.id = a.id + "+" + b.id;

  // FROM: widest scope per source.
  for (std::size_t i = 0; i < m.from.sources.size(); ++i) {
    auto& scope = m.from.sources[i].scope;
    const auto& other = b.from.sources[i].scope;
    if (!scope.has_value() || !other.has_value()) continue;
    AdHocScope widened;
    widened.num_hops = std::max(scope->num_hops, other->num_hops);
    widened.num_nodes = (scope->all_nodes() || other->all_nodes())
                            ? AdHocScope::kAllNodes
                            : std::max(scope->num_nodes, other->num_nodes);
    scope = widened;
  }

  // WHERE: identical -> keep; else drop and rely on post-extraction.
  if (a.where != b.where) m.where.reset();

  // FRESHNESS: loosest requirement (max), per the paper's example
  // (10 sec + 20 sec -> 20 sec).
  if (a.freshness.has_value() && b.freshness.has_value()) {
    m.freshness = std::max(*a.freshness, *b.freshness);
  } else {
    m.freshness.reset();  // one side is unconstrained
  }

  // DURATION: longest. Sample-count durations take the max count; a mix
  // of time and samples keeps the time form with the max time.
  if (a.duration.time.has_value() && b.duration.time.has_value()) {
    m.duration.time = std::max(*a.duration.time, *b.duration.time);
    m.duration.samples.reset();
  } else if (a.duration.samples.has_value() &&
             b.duration.samples.has_value()) {
    m.duration.samples = std::max(*a.duration.samples, *b.duration.samples);
    m.duration.time.reset();
  } else {
    // Mixed: be conservative, keep whichever time exists (a time-bounded
    // superset also covers a sample-bounded query in practice because the
    // provider keeps counting samples per original query).
    m.duration.time =
        a.duration.time.has_value() ? a.duration.time : b.duration.time;
    m.duration.samples.reset();
  }

  // EVERY: fastest rate (min), per the example (15 sec + 30 sec -> 15 sec).
  if (a.every.has_value() && b.every.has_value()) {
    m.every = std::min(*a.every, *b.every);
  }
  // EVENT: identical by the gate; already in m (copied from a).
  return m;
}

bool PostExtract(const CxtQuery& q, const CxtItem& item, SimTime now) {
  if (item.type != q.select_type) return false;
  if (item.IsExpired(now)) return false;
  if (q.freshness.has_value() && !item.IsFresh(now, *q.freshness)) {
    return false;
  }
  if (q.where.has_value()) {
    const auto match = EvalWhere(*q.where, item);
    if (!match.ok() || !*match) return false;
  }
  return true;
}

std::vector<std::vector<std::size_t>> ClusterQueries(
    std::span<const CxtQuery> queries, const MergePolicy& policy) {
  std::vector<std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    bool placed = false;
    for (auto& cluster : clusters) {
      if (Mergeable(queries[cluster.front()], queries[i], policy)) {
        cluster.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) clusters.push_back({i});
  }
  return clusters;
}

Result<CxtQuery> MergeAll(std::span<const CxtQuery> queries,
                          const MergePolicy& policy) {
  if (queries.empty()) return InvalidArgument("no queries to merge");
  CxtQuery acc = queries.front();
  for (std::size_t i = 1; i < queries.size(); ++i) {
    auto merged = Merge(acc, queries[i], policy);
    if (!merged.ok()) return merged.status();
    acc = *std::move(merged);
  }
  return acc;
}

}  // namespace contory::query
