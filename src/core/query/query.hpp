// CxtQuery: the parsed/constructed context query object, plus a fluent
// builder for programmatic construction (what the J2ME prototype's
// "instantiating context query objects in few lines of code" looked like).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "core/query/ast.hpp"

namespace contory::query {

/// Admission priority class (PRIORITY clause). Under overload the
/// OverloadGovernor sheds background first, then standard; interactive
/// traffic keeps admitting. The planner sees the class through the query
/// record it plans.
enum class QueryPriority : std::uint8_t {
  kInteractive = 0,
  kStandard = 1,  // the default: unannotated queries
  kBackground = 2,
};

/// "interactive" / "standard" / "background".
[[nodiscard]] const char* QueryPriorityName(QueryPriority p) noexcept;

struct CxtQuery {
  /// Unique query id, assigned on submission ("a unique identifier is
  /// associated with each query").
  std::string id;
  std::string select_type;              // SELECT (mandatory)
  FromClause from;                      // FROM (optional: auto)
  std::optional<Predicate> where;       // WHERE
  std::optional<SimDuration> freshness; // FRESHNESS
  DurationClause duration;              // DURATION (mandatory)
  std::optional<SimDuration> every;     // EVERY  } mutually
  std::optional<Predicate> event;       // EVENT  } exclusive
  QueryPriority priority = QueryPriority::kStandard;  // PRIORITY (optional)

  [[nodiscard]] InteractionMode mode() const noexcept {
    if (every.has_value()) return InteractionMode::kPeriodic;
    if (event.has_value()) return InteractionMode::kEventBased;
    return InteractionMode::kOnDemand;
  }

  /// Structural validity: SELECT and DURATION present, EVERY xor EVENT,
  /// aggregates only in EVENT, adHoc scopes sane. Parse() and Build()
  /// enforce this; it is re-checked at submission.
  [[nodiscard]] Status Validate() const;

  /// Renders back to query-language text (parse/print round-trips).
  [[nodiscard]] std::string ToString() const;

  /// Parses query text. Offsets in error messages refer to `text`.
  [[nodiscard]] static Result<CxtQuery> Parse(std::string_view text);

  /// Wire encoding, padded to the prototype's 205-byte query object when
  /// smaller ("the size of a context query object is 205 bytes").
  [[nodiscard]] std::vector<std::byte> Serialize() const;
  [[nodiscard]] static Result<CxtQuery> Deserialize(
      const std::vector<std::byte>& wire);

  friend bool operator==(const CxtQuery&, const CxtQuery&) = default;
};

/// Fluent construction:
///   auto q = QueryBuilder(vocab::kTemperature)
///                .FromAdHoc(10, 3)
///                .WhereMeta("accuracy", CompareOp::kEq, 0.2)
///                .Freshness(30s)
///                .For(1h)
///                .Event(avg_above_25)
///                .Build();            // throws std::invalid_argument
class QueryBuilder {
 public:
  explicit QueryBuilder(std::string select_type);

  QueryBuilder& FromAuto();
  QueryBuilder& FromIntSensor(std::string address = {});
  QueryBuilder& FromExtInfra(std::string address = {});
  QueryBuilder& FromAdHoc(int num_nodes = AdHocScope::kAllNodes,
                          int num_hops = 1);
  /// Adds a destination to the most recently added source (or to a fresh
  /// auto source when none was added yet).
  QueryBuilder& TargetRegion(GeoPoint center, double radius_m);
  QueryBuilder& TargetEntity(std::string entity_id);

  /// ANDs another comparison into the WHERE clause.
  QueryBuilder& Where(Comparison c);
  QueryBuilder& WhereMeta(std::string field, CompareOp op, CxtValue literal);
  QueryBuilder& WherePredicate(Predicate p);

  QueryBuilder& Freshness(SimDuration d);
  QueryBuilder& For(SimDuration lifetime);   // DURATION <time>
  QueryBuilder& ForSamples(int samples);     // DURATION <n> samples
  QueryBuilder& Every(SimDuration period);
  QueryBuilder& Event(Predicate p);
  QueryBuilder& EventAggregate(AggregateFn fn, std::string type,
                               CompareOp op, double threshold);
  QueryBuilder& Priority(QueryPriority p);

  /// Validates and returns the query. Throws std::invalid_argument on a
  /// structurally invalid combination (programming error).
  [[nodiscard]] CxtQuery Build() const;

 private:
  SourceSpec& LastSource();
  CxtQuery q_;
};

}  // namespace contory::query
