// Recursive-descent parser for the context query language.
#pragma once

#include <string_view>

#include "common/status.hpp"
#include "core/query/query.hpp"

namespace contory::query {

/// Parses query text into a validated CxtQuery (without an id — ids are
/// assigned at submission). Error messages carry the offending token and
/// its offset.
[[nodiscard]] Result<CxtQuery> ParseQuery(std::string_view text);

/// Parses a standalone predicate expression (used by the rules engine and
/// tests), e.g. "accuracy=0.2 AND trust>=1".
[[nodiscard]] Result<Predicate> ParsePredicate(std::string_view text);

}  // namespace contory::query
