#include "core/query/ast.hpp"

#include <cstdio>
#include <stdexcept>

namespace contory::query {

const char* CompareOpName(CompareOp op) noexcept {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kGt: return ">";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* AggregateFnName(AggregateFn fn) noexcept {
  switch (fn) {
    case AggregateFn::kNone: return "";
    case AggregateFn::kAvg: return "AVG";
    case AggregateFn::kMin: return "MIN";
    case AggregateFn::kMax: return "MAX";
    case AggregateFn::kCount: return "COUNT";
    case AggregateFn::kSum: return "SUM";
  }
  return "?";
}

const char* SourceSelName(SourceSel s) noexcept {
  switch (s) {
    case SourceSel::kAuto: return "auto";
    case SourceSel::kIntSensor: return "intSensor";
    case SourceSel::kExtInfra: return "extInfra";
    case SourceSel::kAdHocNetwork: return "adHocNetwork";
  }
  return "?";
}

const char* InteractionModeName(InteractionMode m) noexcept {
  switch (m) {
    case InteractionMode::kOnDemand: return "on-demand";
    case InteractionMode::kPeriodic: return "periodic";
    case InteractionMode::kEventBased: return "event-based";
  }
  return "?";
}

std::string Comparison::ToString() const {
  std::string out;
  if (aggregate != AggregateFn::kNone) {
    out += AggregateFnName(aggregate);
    out += '(';
    out += field;
    out += ')';
  } else {
    out += field;
  }
  out += CompareOpName(op);
  if (literal.is_string()) {
    out += '"' + literal.ToString() + '"';
  } else {
    out += literal.ToString();
  }
  return out;
}

Predicate Predicate::And(std::vector<Predicate> children) {
  if (children.size() < 2) {
    throw std::invalid_argument("Predicate::And needs >=2 children");
  }
  Predicate p;
  p.kind = Kind::kAnd;
  p.children = std::move(children);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> children) {
  if (children.size() < 2) {
    throw std::invalid_argument("Predicate::Or needs >=2 children");
  }
  Predicate p;
  p.kind = Kind::kOr;
  p.children = std::move(children);
  return p;
}

Predicate Predicate::Not(Predicate child) {
  Predicate p;
  p.kind = Kind::kNot;
  p.children.push_back(std::move(child));
  return p;
}

bool Predicate::ContainsAggregate() const {
  if (kind == Kind::kComparison) {
    return comparison.aggregate != AggregateFn::kNone;
  }
  for (const auto& child : children) {
    if (child.ContainsAggregate()) return true;
  }
  return false;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kComparison:
      return comparison.ToString();
    case Kind::kNot:
      return "NOT (" + children.front().ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      const char* joiner = kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += joiner;
        out += children[i].ToString();
      }
      out += ')';
      return out;
    }
  }
  return "?";
}

std::string SourceSpec::ToString() const {
  std::string out = SourceSelName(kind);
  if (kind == SourceSel::kAdHocNetwork && scope.has_value()) {
    out += '(';
    out += scope->all_nodes() ? "all" : std::to_string(scope->num_nodes);
    out += ',';
    out += std::to_string(scope->num_hops);
    out += ')';
  } else if (!address.empty()) {
    out += "(\"" + address + "\")";
  }
  char buf[96];
  if (region.has_value()) {
    std::snprintf(buf, sizeof buf, " region(%.4f,%.4f,%.0f)",
                  region->center.lat, region->center.lon, region->radius_m);
    out += buf;
  }
  if (entity.has_value()) out += " entity(\"" + entity->entity_id + "\")";
  return out;
}

std::string FromClause::ToString() const {
  if (IsAuto()) return "auto";
  std::string out;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i > 0) out += ", ";
    out += sources[i].ToString();
  }
  return out;
}

std::string DurationClause::ToString() const {
  if (samples.has_value()) return std::to_string(*samples) + " samples";
  if (time.has_value()) return FormatDuration(*time);
  return "(unset)";
}

}  // namespace contory::query
