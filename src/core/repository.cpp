#include "core/repository.hpp"

namespace contory::core {

CxtRepository::CxtRepository(sim::Simulation& sim, CxtRepositoryConfig config)
    : sim_(sim), config_(config) {}

void CxtRepository::Store(CxtItem item) {
  auto& ring = rings_[item.type];
  ring.push_back(std::move(item));
  ++count_;
  while (ring.size() > config_.max_items_per_type) {
    ring.pop_front();
    --count_;
  }
}

Result<CxtItem> CxtRepository::Latest(const std::string& type) const {
  const auto it = rings_.find(type);
  if (it == rings_.end()) {
    return NotFound("no stored items of type '" + type + "'");
  }
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (!rit->IsExpired(sim_.Now())) return *rit;
  }
  return NotFound("all stored items of type '" + type + "' expired");
}

std::vector<CxtItem> CxtRepository::Recent(const std::string& type,
                                           std::size_t max_n) const {
  std::vector<CxtItem> out;
  const auto it = rings_.find(type);
  if (it == rings_.end()) return out;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->IsExpired(sim_.Now())) continue;
    out.push_back(*rit);
    if (max_n != 0 && out.size() >= max_n) break;
  }
  return out;
}

std::size_t CxtRepository::PurgeExpired() {
  std::size_t removed = 0;
  for (auto& [type, ring] : rings_) {
    for (auto it = ring.begin(); it != ring.end();) {
      if (it->IsExpired(sim_.Now())) {
        it = ring.erase(it);
        ++removed;
        --count_;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

void CxtRepository::Shrink(std::size_t per_type) {
  config_.max_items_per_type = per_type;
  for (auto& [type, ring] : rings_) {
    while (ring.size() > per_type) {
      ring.pop_front();
      --count_;
    }
  }
}

}  // namespace contory::core
