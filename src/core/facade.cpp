#include "core/facade.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "obs/observability.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "facade";

/// Cached per-mechanism registry handles — Submit is the hot path, and
/// handles are stable across Reset() (see MetricsRegistry).
obs::Counter& ProvidersCreatedCounter(query::SourceSel kind) {
  static obs::Counter* by_kind[4] = {};
  auto& slot = by_kind[static_cast<std::size_t>(kind)];
  if (slot == nullptr) {
    slot = &obs::Observability::metrics().GetCounter(
        "providers_created_total",
        {{"mechanism", query::SourceSelName(kind)}});
  }
  return *slot;
}

obs::Counter& MergedCounter(query::SourceSel kind) {
  static obs::Counter* by_kind[4] = {};
  auto& slot = by_kind[static_cast<std::size_t>(kind)];
  if (slot == nullptr) {
    slot = &obs::Observability::metrics().GetCounter(
        "queries_merged_total", {{"mechanism", query::SourceSelName(kind)}});
  }
  return *slot;
}

}  // namespace

Facade::Facade(sim::Simulation& sim, query::SourceSel kind,
               ProviderFactory provider_factory, query::MergePolicy policy)
    : sim_(sim),
      kind_(kind),
      provider_factory_(std::move(provider_factory)),
      policy_(policy) {
  if (!provider_factory_) {
    throw std::invalid_argument("Facade: null provider factory");
  }
}

Facade::~Facade() { *life_ = false; }

Facade::ClusterKey Facade::KeyFor(const query::CxtQuery& q) {
  return {q.select_type, static_cast<int>(q.mode())};
}

Status Facade::StartCluster(Cluster& cluster) {
  Cluster* cluster_ptr = &cluster;
  CxtProvider::Callbacks callbacks;
  callbacks.deliver = [this, cluster_ptr](const CxtItem& item) {
    OnProviderDelivery(*cluster_ptr, item);
  };
  callbacks.finished = [this, cluster_ptr](Status status) {
    OnProviderFinished(*cluster_ptr, status);
  };
  cluster.provider =
      provider_factory_(cluster.merged, std::move(callbacks));
  if (cluster.provider == nullptr) {
    return Internal("provider factory returned null");
  }
  ++providers_created_;
  COBS(ProvidersCreatedCounter(kind_).Inc());
  starting_ = &cluster;
  cluster.provider->Start();
  starting_ = nullptr;
  return Status::Ok();
}

Status Facade::Submit(query::CxtQuery q) {
  if (const Status s = q.Validate(); !s.ok()) return s;

  // Query merging: only clusters under the same (select_type, mode) key
  // can possibly accept the query; join the first compatible one. A
  // negative threshold means nothing ever merges, so both the candidate
  // scan and the index feeding it are skipped outright.
  const bool merging = policy_.threshold >= 0.0;
  const ClusterKey key = KeyFor(q);
  if (merging) {
    const auto bucket_it = merge_index_.find(key);
    if (bucket_it != merge_index_.end()) {
      std::size_t examined = 0;
      for (Cluster* cluster : bucket_it->second) {
        if (cluster->dead) continue;
        if (++examined > kMaxMergeCandidates) break;
        auto merged = query::Merge(cluster->merged, q, policy_);
        if (!merged.ok()) continue;
        CLOG_DEBUG(kModule, "%s: merged %s into %s",
                   query::SourceSelName(kind_), q.id.c_str(),
                   cluster->merged.id.c_str());
        COBS(MergedCounter(kind_).Inc());
        cluster->merged = *std::move(merged);
        by_original_id_[q.id] = cluster;
        ++live_originals_;
        cluster->originals.push_back(std::move(q));
        cluster->provider->UpdateQuery(cluster->merged);
        return Status::Ok();
      }
    }
  }

  auto cluster = std::make_unique<Cluster>();
  cluster->key = key;
  cluster->merged = q;
  const std::string id = q.id;
  cluster->originals.push_back(std::move(q));
  Cluster& ref = *cluster;
  clusters_.push_back(std::move(cluster));
  const Status s = StartCluster(ref);
  if (!s.ok()) {
    clusters_.pop_back();
    return s;
  }
  // A provider that failed from inside its own Start() already marked the
  // cluster dead; it never enters the indexes (the reap destroys it).
  if (!ref.dead) {
    ref.indexed = true;
    ++live_clusters_;
    ++live_originals_;
    if (merging) {
      auto& bucket = merge_index_[key];
      ref.bucket_pos = bucket.size();
      bucket.push_back(&ref);
    }
    by_original_id_[id] = &ref;
  }
  return s;
}

void Facade::MarkDead(Cluster& cluster) {
  cluster.dead = true;
  if (!cluster.indexed) return;
  cluster.indexed = false;
  --live_clusters_;
  live_originals_ -= cluster.originals.size();
  for (const auto& original : cluster.originals) {
    const auto it = by_original_id_.find(original.id);
    if (it != by_original_id_.end() && it->second == &cluster) {
      by_original_id_.erase(it);
    }
  }
  const auto bucket_it = merge_index_.find(cluster.key);
  if (bucket_it != merge_index_.end()) {
    auto& bucket = bucket_it->second;
    // Swap-remove at the recorded position: O(1) where a scan-and-erase
    // would make tearing down N same-key clusters quadratic.
    const std::size_t pos = cluster.bucket_pos;
    if (pos < bucket.size() && bucket[pos] == &cluster) {
      bucket[pos] = bucket.back();
      bucket[pos]->bucket_pos = pos;
      bucket.pop_back();
    } else {
      std::erase(bucket, &cluster);
    }
    if (bucket.empty()) merge_index_.erase(bucket_it);
  }
}

void Facade::OnProviderDelivery(Cluster& cluster, const CxtItem& item) {
  if (cluster.dead || !delivery_) return;
  // Post-extraction: each original query gets exactly the data matching
  // its own clauses. Matching ids are snapshotted first so a client that
  // cancels queries from inside its delivery callback cannot invalidate
  // the iteration.
  std::vector<std::string> matched;
  for (const auto& original : cluster.originals) {
    if (query::PostExtract(original, item, sim_.Now())) {
      matched.push_back(original.id);
    }
  }
  for (const auto& id : matched) {
    delivery_(id, item);
  }
}

void Facade::OnProviderFinished(Cluster& cluster, const Status& status) {
  if (cluster.dead) return;
  MarkDead(cluster);
  if (&cluster == starting_) {
    // The provider failed from inside its own Start() (e.g. a cached but
    // empty discovery answers synchronously), so Submit() is still on the
    // caller's stack. Reporting now would let the factory's failover
    // logic run reentrantly against a half-updated query record; move
    // the notification to a fresh event instead.
    sim_.ScheduleAfter(SimDuration::zero(),
                       [this, life = life_, originals = cluster.originals,
                        status]() {
                         if (!*life || !finished_) return;
                         for (const auto& original : originals) {
                           finished_(original.id, status);
                         }
                       },
                       "facade.finish");
    ScheduleReap();
    return;
  }
  if (finished_) {
    for (const auto& original : cluster.originals) {
      finished_(original.id, status);
    }
  }
  ScheduleReap();
}

void Facade::ScheduleReap() {
  if (reap_scheduled_) return;
  reap_scheduled_ = true;
  // Providers call finished() from their own stack; destroy them from a
  // fresh event instead.
  sim_.ScheduleAfter(SimDuration::zero(), [this, life = life_] {
    if (!*life) return;
    reap_scheduled_ = false;
    for (const auto& c : clusters_) {
      if (c->dead && c->provider != nullptr) {
        retries_reaped_ += c->provider->retries_attempted();
      }
    }
    std::erase_if(clusters_, [](const std::unique_ptr<Cluster>& c) {
      return c->dead;
    });
  }, "facade.reap");
}

void Facade::Cancel(const std::string& query_id) {
  const auto it = by_original_id_.find(query_id);
  if (it == by_original_id_.end()) return;
  Cluster* cluster = it->second;
  if (cluster->dead) return;
  const auto orig_it = std::find_if(
      cluster->originals.begin(), cluster->originals.end(),
      [&](const query::CxtQuery& q) { return q.id == query_id; });
  if (orig_it == cluster->originals.end()) return;
  cluster->originals.erase(orig_it);
  --live_originals_;
  by_original_id_.erase(it);
  if (cluster->originals.empty()) {
    cluster->provider->Stop();
    MarkDead(*cluster);
    ScheduleReap();
    return;
  }
  // Re-merge the remaining originals so the provider narrows back.
  auto merged = query::MergeAll(cluster->originals, policy_);
  if (merged.ok()) {
    cluster->merged = *std::move(merged);
    cluster->provider->UpdateQuery(cluster->merged);
  }
}

void Facade::StopAll(const Status& status) {
  // Index loop: finished_ may reenter this facade (failover submitting a
  // replacement) and grow clusters_.
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    Cluster& cluster = *clusters_[i];
    if (cluster.dead) continue;
    cluster.provider->Stop();
    MarkDead(cluster);
    if (finished_) {
      for (const auto& original : cluster.originals) {
        finished_(original.id, status);
      }
    }
  }
  ScheduleReap();
}

std::uint64_t Facade::retries_observed() const {
  std::uint64_t n = retries_reaped_;
  for (const auto& cluster : clusters_) {
    if (cluster->provider != nullptr) {
      n += cluster->provider->retries_attempted();
    }
  }
  return n;
}

std::vector<std::string> Facade::ActiveMergedIds() const {
  std::vector<std::string> ids;
  for (const auto& cluster : clusters_) {
    if (!cluster->dead) ids.push_back(cluster->merged.id);
  }
  return ids;
}

}  // namespace contory::core
