// Umbrella header: the Contory public API.
//
// A downstream application includes this header, builds a DeviceServices
// binding for its device, constructs a ContextFactory, implements the
// Client interface, and talks to Contory through the query language:
//
//   auto q = contory::query::CxtQuery::Parse(
//       "SELECT temperature FROM adHocNetwork(10,3) "
//       "WHERE accuracy=0.2 FRESHNESS 30 sec "
//       "DURATION 1 hour EVENT AVG(temperature)>25");
//   factory.ProcessCxtQuery(*q, my_client);
//
// See examples/quickstart.cpp for a complete walk-through.
#pragma once

#include "core/access_controller.hpp"
#include "core/client.hpp"
#include "core/context_factory.hpp"
#include "core/device_services.hpp"
#include "core/facade.hpp"
#include "core/model/cxt_item.hpp"
#include "core/model/cxt_value.hpp"
#include "core/model/metadata.hpp"
#include "core/model/vocabulary.hpp"
#include "core/providers/adhoc_provider.hpp"
#include "core/providers/aggregator.hpp"
#include "core/providers/infra_provider.hpp"
#include "core/providers/local_provider.hpp"
#include "core/publisher.hpp"
#include "core/query/merge.hpp"
#include "core/query/parser.hpp"
#include "core/query/predicate.hpp"
#include "core/pipeline/admission.hpp"
#include "core/pipeline/delivery_router.hpp"
#include "core/pipeline/failover_coordinator.hpp"
#include "core/pipeline/sharded_query_table.hpp"
#include "core/pipeline/strategy_planner.hpp"
#include "core/query/query.hpp"
#include "core/repository.hpp"
#include "core/resources_monitor.hpp"
#include "core/rules.hpp"
