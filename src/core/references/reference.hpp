// Reference modules (Sec. 4.3).
//
// "To provide discovery of CxtSources as well as to support communication
// with them, different types of Reference modules can be available on the
// device. Typically, a Reference mediates the access to a certain
// communication module by offering useful programming abstractions. ...
// Each time network, sensors, or device failures affect the functioning
// of a communication module, the corresponding Reference notifies the
// ResourcesMonitor module."
#pragma once

#include <functional>
#include <string>

namespace contory::core {

class Reference {
 public:
  virtual ~Reference() = default;

  /// "InternalReference", "BTReference", "WiFiReference", "2G/3GReference".
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Can the underlying module be used right now?
  [[nodiscard]] virtual bool Available() const = 0;

  /// Hooked by the ResourcesMonitor; fired on module failures.
  using FailureHandler = std::function<void(const std::string& reason)>;
  void SetFailureHandler(FailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

 protected:
  void NotifyFailure(const std::string& reason) {
    if (failure_handler_) failure_handler_(reason);
  }

 private:
  FailureHandler failure_handler_;
};

}  // namespace contory::core
