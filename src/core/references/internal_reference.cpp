#include "core/references/internal_reference.hpp"

namespace contory::core {

void InternalReference::RegisterSource(
    std::unique_ptr<sensors::CxtSource> source) {
  if (source == nullptr) {
    throw std::invalid_argument("InternalReference: null source");
  }
  sources_.push_back(std::move(source));
}

std::vector<sensors::CxtSource*> InternalReference::SourcesOfType(
    const std::string& type) const {
  std::vector<sensors::CxtSource*> out;
  for (const auto& source : sources_) {
    if (source->type() == type) out.push_back(source.get());
  }
  return out;
}

Result<CxtItem> InternalReference::Sample(const std::string& type) {
  const auto sources = SourcesOfType(type);
  if (sources.empty()) {
    return NotFound("no internal sensor for '" + type + "'");
  }
  Status last = Unavailable("no source sampled");
  for (sensors::CxtSource* source : sources) {
    auto item = source->Sample();
    if (item.ok()) return item;
    last = item.status();
  }
  NotifyFailure("all internal sensors for '" + type + "' failed: " +
                last.ToString());
  return last;
}

}  // namespace contory::core
