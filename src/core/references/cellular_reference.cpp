#include "core/references/cellular_reference.hpp"

namespace contory::core {

CellularReference::CellularReference(net::CellularModem* modem)
    : modem_(modem) {
  if (modem_ == nullptr) return;
  modem_->SetPushHandler([this](const std::vector<std::byte>& frame) {
    const auto event = infra::UnwrapEvent(frame);
    if (!event.ok()) {
      NotifyFailure("malformed event notification: " +
                    event.status().ToString());
      return;
    }
    const auto it = topic_handlers_.find(event->topic);
    if (it != topic_handlers_.end()) it->second(*event);
  });
}

void CellularReference::SendRequest(
    const std::string& address, std::vector<std::byte> request,
    std::function<void(Result<std::vector<std::byte>>)> done,
    SimDuration timeout) {
  if (modem_ == nullptr) {
    if (done) done(Unavailable("device has no cellular module"));
    return;
  }
  modem_->SendRequest(
      address, std::move(request),
      [this, done = std::move(done)](Result<std::vector<std::byte>> r) {
        if (!r.ok() && r.status().code() != StatusCode::kNotFound) {
          NotifyFailure("cellular request failed: " + r.status().ToString());
        }
        if (done) done(std::move(r));
      },
      timeout);
}

void CellularReference::SetTopicHandler(const std::string& topic,
                                        TopicHandler handler) {
  topic_handlers_[topic] = std::move(handler);
}

void CellularReference::RemoveTopicHandler(const std::string& topic) {
  topic_handlers_.erase(topic);
}

}  // namespace contory::core
