#include "core/references/wifi_reference.hpp"

namespace contory::core {

std::string CxtTagName(const std::string& type) { return "cxt." + type; }

WiFiReference::WiFiReference(net::WifiController* wifi, sm::SmRuntime* sm)
    : wifi_(wifi), sm_(sm) {}

void WiFiReference::SetParticipating(bool participating) {
  if (sm_ != nullptr) sm_->SetParticipating(participating);
}

void WiFiReference::PublishTag(const std::string& type, std::string value,
                               std::optional<SimDuration> lifetime,
                               std::string access_key) {
  if (sm_ == nullptr) {
    NotifyFailure("cannot publish tag: no SM runtime");
    return;
  }
  sm_->tags().Upsert(CxtTagName(type), std::move(value), lifetime,
                     std::move(access_key));
}

void WiFiReference::RemoveTag(const std::string& type) {
  if (sm_ != nullptr) (void)sm_->tags().Delete(CxtTagName(type));
}

Result<int> WiFiReference::DistanceToType(const std::string& type) const {
  if (sm_ == nullptr || wifi_ == nullptr || !wifi_->enabled()) {
    return Unavailable("wifi reference not available");
  }
  return sm_->HopDistanceToTag(CxtTagName(type));
}

std::vector<std::pair<net::NodeId, int>> WiFiReference::NodesWithType(
    const std::string& type, int max_hops) const {
  if (sm_ == nullptr || wifi_ == nullptr || !wifi_->enabled()) return {};
  return sm_->NodesWithTag(CxtTagName(type), max_hops);
}

}  // namespace contory::core
