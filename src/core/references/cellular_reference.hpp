// 2G/3GReference: mediated access to the cellular module (Sec. 4.3, 5.1).
//
// "The 2G/3GReference manages communications with remote entities over
// the corresponding network standards and offers an event-based
// interface" — request/response exchanges with infrastructure servers
// plus dispatch of pushed event notifications to per-topic handlers
// (what the Fuego middleware provided in the prototype).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "core/references/reference.hpp"
#include "infra/event_broker.hpp"
#include "net/cellular.hpp"

namespace contory::core {

class CellularReference final : public Reference {
 public:
  /// `modem` may be null (device without a cellular subscription).
  explicit CellularReference(net::CellularModem* modem);

  [[nodiscard]] const char* name() const noexcept override {
    return "2G/3GReference";
  }
  [[nodiscard]] bool Available() const override {
    return modem_ != nullptr && modem_->radio_on();
  }
  [[nodiscard]] net::CellularModem* modem() noexcept { return modem_; }

  /// Sends a request; failures are additionally reported to the
  /// ResourcesMonitor (they often mean coverage loss). `timeout` bounds
  /// the exchange (retry policies pass their per-attempt budget here).
  void SendRequest(const std::string& address, std::vector<std::byte> request,
                   std::function<void(Result<std::vector<std::byte>>)> done,
                   SimDuration timeout = std::chrono::seconds{30});

  // --- Event-based interface ---------------------------------------------
  using TopicHandler = std::function<void(const infra::Event&)>;
  /// Routes pushed event notifications whose topic matches exactly.
  void SetTopicHandler(const std::string& topic, TopicHandler handler);
  void RemoveTopicHandler(const std::string& topic);

 private:
  net::CellularModem* modem_;
  std::unordered_map<std::string, TopicHandler> topic_handlers_;
};

}  // namespace contory::core
