#include "core/references/bt_reference.hpp"

#include <utility>

namespace contory::core {

BTReference::BTReference(sim::Simulation& sim,
                         net::BluetoothController* controller)
    : sim_(sim), controller_(controller) {
  if (controller_ == nullptr) return;
  controller_->SetDataHandler(
      [this](net::BtLinkId link, net::NodeId from,
             const std::vector<std::byte>& data) {
        // Copy the map: a listener may add/remove listeners.
        const auto listeners = data_listeners_;
        for (const auto& [id, fn] : listeners) fn(link, from, data);
      });
  controller_->SetDisconnectHandler(
      [this](net::BtLinkId link, net::NodeId peer) {
        NotifyFailure("BT link " + std::to_string(link) + " to node " +
                      std::to_string(peer) + " dropped");
        const auto listeners = disconnect_listeners_;
        for (const auto& [id, fn] : listeners) fn(link, peer);
      });
}

bool BTReference::HasFreshDiscovery(SimDuration max_age) const {
  return cache_.has_value() && sim_.Now() - cache_->at <= max_age;
}

void BTReference::Discover(SimDuration max_age, DiscoverCallback done) {
  if (!done) return;
  if (controller_ == nullptr) {
    done(Unavailable("device has no bluetooth module"));
    return;
  }
  if (HasFreshDiscovery(max_age)) {
    done(cache_->devices);
    return;
  }
  pending_discoveries_.push_back(std::move(done));
  if (pending_discoveries_.size() > 1) return;  // inquiry already running

  controller_->StartInquiry(
      [this](Result<std::vector<net::BtDeviceInfo>> result) {
        auto waiting = std::move(pending_discoveries_);
        pending_discoveries_.clear();
        if (result.ok()) {
          cache_ = DiscoveryCache{*result, sim_.Now()};
        } else {
          NotifyFailure("BT inquiry failed: " + result.status().ToString());
        }
        for (auto& cb : waiting) cb(result);
      });
}

BTReference::ListenerId BTReference::AddDataListener(DataListener listener) {
  const ListenerId id = next_listener_++;
  data_listeners_[id] = std::move(listener);
  return id;
}

void BTReference::RemoveDataListener(ListenerId id) {
  data_listeners_.erase(id);
}

BTReference::ListenerId BTReference::AddDisconnectListener(
    DisconnectListener listener) {
  const ListenerId id = next_listener_++;
  disconnect_listeners_[id] = std::move(listener);
  return id;
}

void BTReference::RemoveDisconnectListener(ListenerId id) {
  disconnect_listeners_.erase(id);
}

}  // namespace contory::core
