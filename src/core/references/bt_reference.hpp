// BTReference: mediated access to the Bluetooth module (Sec. 4.3, 5.1).
//
// "The BTReference provides support to discover BT devices and services,
// and to communicate with them" — on top of the raw controller it adds
// the abstractions the providers need: a discovery cache (inquiries cost
// 13 s and 5 J; consumers share results), serialized concurrent inquiry
// requests, and listener multiplexing (the controller has single handler
// slots; the GPS provider and the ad hoc provider both need data and
// disconnect events). Link drops are reported to the ResourcesMonitor,
// which is what triggers the Fig. 5 failover.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/references/reference.hpp"
#include "net/bluetooth.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class BTReference final : public Reference {
 public:
  /// `controller` may be null: the device simply has no BT module.
  BTReference(sim::Simulation& sim, net::BluetoothController* controller);

  [[nodiscard]] const char* name() const noexcept override {
    return "BTReference";
  }
  [[nodiscard]] bool Available() const override {
    return controller_ != nullptr && controller_->enabled();
  }
  [[nodiscard]] net::BluetoothController* controller() noexcept {
    return controller_;
  }

  // --- Discovery with cache ---------------------------------------------
  using DiscoverCallback =
      std::function<void(Result<std::vector<net::BtDeviceInfo>>)>;
  /// Reports devices in range. Served from cache when the last inquiry is
  /// younger than `max_age`; otherwise runs an inquiry (13 s). Concurrent
  /// calls share one inquiry.
  void Discover(SimDuration max_age, DiscoverCallback done);
  /// Drops the cache (e.g. after a failure, to force re-discovery).
  void InvalidateDiscoveryCache() { cache_.reset(); }
  [[nodiscard]] bool HasFreshDiscovery(SimDuration max_age) const;
  [[nodiscard]] const std::vector<net::BtDeviceInfo>* CachedDevices() const {
    return cache_.has_value() ? &cache_->devices : nullptr;
  }

  // --- Listener multiplexing ----------------------------------------------
  using ListenerId = std::uint64_t;
  using DataListener = std::function<void(
      net::BtLinkId, net::NodeId from, const std::vector<std::byte>&)>;
  using DisconnectListener =
      std::function<void(net::BtLinkId, net::NodeId peer)>;

  ListenerId AddDataListener(DataListener listener);
  void RemoveDataListener(ListenerId id);
  ListenerId AddDisconnectListener(DisconnectListener listener);
  void RemoveDisconnectListener(ListenerId id);

 private:
  struct DiscoveryCache {
    std::vector<net::BtDeviceInfo> devices;
    SimTime at;
  };

  sim::Simulation& sim_;
  net::BluetoothController* controller_;
  std::optional<DiscoveryCache> cache_;
  std::vector<DiscoverCallback> pending_discoveries_;
  std::map<ListenerId, DataListener> data_listeners_;
  std::map<ListenerId, DisconnectListener> disconnect_listeners_;
  ListenerId next_listener_ = 1;
};

}  // namespace contory::core
