// WiFiReference: mediated access to the WiFi ad hoc module (Sec. 4.3, 5.1).
//
// "The WiFiReference manages communication in WiFi networks, but also
// provides abstractions for content-based routing, geographical routing,
// and multi-hop communication in ad hoc networks" — implemented, as in
// the prototype, on top of the Smart Messages platform. The reference
// owns participation in the Contory overlay and exposes tag publication
// and SM-FINDER style retrieval primitives to the providers.
#pragma once

#include <string>
#include <unordered_set>

#include "core/references/reference.hpp"
#include "net/wifi.hpp"
#include "sm/sm_runtime.hpp"

namespace contory::core {

/// Tag namespace for published context items ("cxt.temperature", ...).
[[nodiscard]] std::string CxtTagName(const std::string& type);

class WiFiReference final : public Reference {
 public:
  /// Either pointer may be null (device without WiFi). When both are
  /// present the reference joins the Contory overlay on Enable().
  WiFiReference(net::WifiController* wifi, sm::SmRuntime* sm);

  [[nodiscard]] const char* name() const noexcept override {
    return "WiFiReference";
  }
  [[nodiscard]] bool Available() const override {
    return wifi_ != nullptr && sm_ != nullptr && wifi_->enabled();
  }
  [[nodiscard]] net::WifiController* wifi() noexcept { return wifi_; }
  [[nodiscard]] sm::SmRuntime* sm() noexcept { return sm_; }

  /// Joins/leaves the Contory SM overlay ("exposing the tag 'contory'").
  void SetParticipating(bool participating);

  /// Publishes a context item tag on the local node (type name + encoded
  /// value), optionally key-locked.
  void PublishTag(const std::string& type, std::string value,
                  std::optional<SimDuration> lifetime,
                  std::string access_key = {});
  void RemoveTag(const std::string& type);

  /// Hop distance to the nearest node exposing items of `type`
  /// (kNotFound when unreachable) — used both by routing and by the
  /// WeatherWatcher's "dense enough / close enough" decision.
  [[nodiscard]] Result<int> DistanceToType(const std::string& type) const;

  /// Nodes exposing `type` within `max_hops` (0 = unbounded).
  [[nodiscard]] std::vector<std::pair<net::NodeId, int>> NodesWithType(
      const std::string& type, int max_hops) const;

 private:
  net::WifiController* wifi_;
  sm::SmRuntime* sm_;
};

}  // namespace contory::core
