// InternalReference: access to sensors integrated in the device.
//
// The paper's prototype left this module unimplemented ("no sensors
// integrated in the phone platform used for the development were
// available at deployment time"); our simulated device does have internal
// sensors (environment samplers, battery/memory monitors), so we provide
// the full module — exactly the kind of extension the architecture was
// designed to accommodate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/references/reference.hpp"
#include "sensors/sensor.hpp"

namespace contory::core {

class InternalReference final : public Reference {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "InternalReference";
  }
  [[nodiscard]] bool Available() const override { return !sources_.empty(); }

  /// Registers an integrated sensor (takes ownership).
  void RegisterSource(std::unique_ptr<sensors::CxtSource> source);

  /// All registered sources producing `type` (empty when none).
  [[nodiscard]] std::vector<sensors::CxtSource*> SourcesOfType(
      const std::string& type) const;

  [[nodiscard]] bool HasSourceOfType(const std::string& type) const {
    return !SourcesOfType(type).empty();
  }

  /// Samples the first working source of `type`; reports a failure to the
  /// ResourcesMonitor when every source of that type errors.
  [[nodiscard]] Result<CxtItem> Sample(const std::string& type);

 private:
  std::vector<std::unique_ptr<sensors::CxtSource>> sources_;
};

}  // namespace contory::core
