// QueryManager (Sec. 4.3).
//
// "The QueryManager is responsible for maintaining an updated list of all
// active queries and for assigning queries to suitable Facade components."
// The assignment decision itself lives in the ContextFactory (it owns the
// policies and the availability view); the manager is the bookkeeping:
// which queries are active, for which client, on which facades, and what
// they have delivered.
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "core/client.hpp"
#include "core/query/query.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

struct QueryRecord {
  query::CxtQuery query;
  Client* client = nullptr;
  /// Facade kinds currently provisioning this query.
  std::set<query::SourceSel> assigned;
  /// Mechanisms that failed for this query (excluded from re-selection).
  std::set<query::SourceSel> failed;
  /// The mechanism the factory preferred originally (switch-back target).
  query::SourceSel preferred = query::SourceSel::kAuto;
  /// True while no mechanism is live and the factory answers from the
  /// local repository with staleness metadata (graceful degradation).
  bool degraded = false;
  SimTime submitted{};
  std::uint64_t items_delivered = 0;
  /// Ids of items already delivered (cross-facade dedup), bounded.
  std::unordered_set<std::string> seen_items;
  std::vector<std::string> seen_order;
};

class QueryManager {
 public:
  explicit QueryManager(sim::Simulation& sim) : sim_(sim) {}

  /// Registers a submitted query; assigns nothing yet.
  Status Register(query::CxtQuery query, Client& client);

  [[nodiscard]] QueryRecord* Find(const std::string& id);
  [[nodiscard]] const QueryRecord* Find(const std::string& id) const;

  void Remove(const std::string& id);

  /// Records a delivery; returns false when `item_id` was already
  /// delivered for this query (duplicate across facades).
  bool RecordDelivery(QueryRecord& record, const std::string& item_id);

  [[nodiscard]] std::size_t active_count() const noexcept {
    return records_.size();
  }
  [[nodiscard]] std::vector<std::string> ActiveIds() const;

 private:
  static constexpr std::size_t kSeenCap = 128;

  sim::Simulation& sim_;
  std::unordered_map<std::string, QueryRecord> records_;
};

}  // namespace contory::core
