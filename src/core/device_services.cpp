#include "core/device_services.hpp"

#include <stdexcept>

namespace contory::core {

void DeviceServices::CheckRequired() const {
  if (sim == nullptr || phone == nullptr || medium == nullptr ||
      node == net::kInvalidNode) {
    throw std::invalid_argument(
        "DeviceServices: sim, phone, medium, and node are required");
  }
}

}  // namespace contory::core
