#include "core/providers/local_provider.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "core/model/vocabulary.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "local";
/// Discovery results younger than this are reused instead of paying the
/// 13 s inquiry again.
constexpr SimDuration kDiscoveryMaxAge = std::chrono::seconds{60};
}  // namespace

LocalCxtProvider::LocalCxtProvider(sim::Simulation& sim,
                                   query::CxtQuery query, Callbacks callbacks,
                                   InternalReference& internal,
                                   BTReference& bt, AccessController& access,
                                   Client* client)
    : CxtProvider(sim, std::move(query), std::move(callbacks)),
      internal_(internal),
      bt_(bt),
      access_(access),
      client_(client) {}

LocalCxtProvider::~LocalCxtProvider() {
  *life_ = false;
  DoStop();
}

bool LocalCxtProvider::CanServe(const query::CxtQuery& q,
                                const InternalReference& internal,
                                const BTReference& bt) {
  if (internal.HasSourceOfType(q.select_type)) return true;
  const bool gps_type = q.select_type == vocab::kLocation ||
                        q.select_type == vocab::kSpeed;
  return gps_type && bt.Available();
}

void LocalCxtProvider::DoStart() {
  if (internal_.HasSourceOfType(query().select_type)) {
    gps_mode_ = false;
    StartSensorMode();
    return;
  }
  if ((query().select_type == vocab::kLocation ||
       query().select_type == vocab::kSpeed) &&
      bt_.Available()) {
    gps_mode_ = true;
    StartGpsMode();
    return;
  }
  // Defer: Fail() while Start() is still on the caller's stack is legal
  // but scheduling keeps submission code paths uniform.
  sim().ScheduleAfter(SimDuration::zero(), [this, life = life_] {
    if (!*life || !running()) return;
    Fail(NotFound("no local sensor can serve '" + query().select_type +
                  "'"));
  });
}

void LocalCxtProvider::DoStop() {
  poller_.reset();
  if (data_listener_ != 0) {
    bt_.RemoveDataListener(data_listener_);
    data_listener_ = 0;
  }
  if (disconnect_listener_ != 0) {
    bt_.RemoveDisconnectListener(disconnect_listener_);
    disconnect_listener_ = 0;
  }
  if (gps_link_ != 0 && bt_.controller() != nullptr) {
    bt_.controller()->Disconnect(gps_link_);
    gps_link_ = 0;
  }
}

void LocalCxtProvider::OnQueryUpdated() {
  if (poller_ != nullptr) poller_->SetPeriod(DefaultPollPeriod());
}

// --- Integrated-sensor mode -------------------------------------------------

void LocalCxtProvider::StartSensorMode() {
  if (query().mode() == query::InteractionMode::kOnDemand) {
    SampleSensorOnce();
    if (running()) CompleteOk();
    return;
  }
  poller_ = std::make_unique<sim::PeriodicTask>(
      sim(), SimDuration::zero() + DefaultPollPeriod(), DefaultPollPeriod(),
      [this] { SampleSensorOnce(); });
  // Long-running queries also report an immediate first value.
  SampleSensorOnce();
}

void LocalCxtProvider::SampleSensorOnce() {
  auto item = internal_.Sample(query().select_type);
  if (!item.ok()) {
    Fail(item.status());
    return;
  }
  Offer(*std::move(item));
}

// --- BT-GPS mode -------------------------------------------------------------

void LocalCxtProvider::StartGpsMode() {
  bt_.Discover(kDiscoveryMaxAge, [this, life = life_](
                                     Result<std::vector<net::BtDeviceInfo>>
                                         devices) {
    if (!*life || !running()) return;
    if (!devices.ok()) {
      Fail(devices.status());
      return;
    }
    if (devices->empty()) {
      Fail(Unavailable("no BT devices in range for GPS search"));
      return;
    }
    SearchGpsService(*std::move(devices), 0);
  });
}

void LocalCxtProvider::SearchGpsService(
    std::vector<net::BtDeviceInfo> devices, std::size_t index) {
  if (index >= devices.size()) {
    Fail(NotFound("no device advertises a GPS service"));
    return;
  }
  const auto device = devices[index];
  const std::string address = "bt:" + device.name;
  if (!access_.Admit(address, client_)) {
    CLOG_INFO(kModule, "access controller blocked %s", address.c_str());
    SearchGpsService(std::move(devices), index + 1);
    return;
  }
  bt_.controller()->DiscoverServices(
      device.node, sensors::kGpsServiceName,
      [this, life = life_, devices = std::move(devices), index,
       device](Result<std::vector<net::ServiceRecord>> records) mutable {
        if (!*life || !running()) return;
        if (records.ok() && !records->empty()) {
          ConnectGps(device.node, device.name);
          return;
        }
        SearchGpsService(std::move(devices), index + 1);
      });
}

void LocalCxtProvider::ConnectGps(net::NodeId device,
                                  std::string device_name) {
  gps_device_name_ = std::move(device_name);
  data_listener_ = bt_.AddDataListener(
      [this](net::BtLinkId link, net::NodeId,
             const std::vector<std::byte>& data) {
        if (link == gps_link_) OnNmea(data);
      });
  disconnect_listener_ = bt_.AddDisconnectListener(
      [this](net::BtLinkId link, net::NodeId) {
        if (link != gps_link_) return;
        gps_link_ = 0;
        // The Fig. 5 trigger: the GPS vanished mid-query.
        Fail(Unavailable("BT-GPS '" + gps_device_name_ + "' disconnected"));
      });
  bt_.controller()->Connect(
      device, [this, life = life_](Result<net::BtLinkId> link) {
        if (!*life || !running()) return;
        if (!link.ok()) {
          Fail(link.status());
          return;
        }
        gps_link_ = *link;
        CLOG_INFO(kModule, "connected to BT-GPS '%s'",
                  gps_device_name_.c_str());
        if (query().mode() == query::InteractionMode::kPeriodic) {
          poller_ = std::make_unique<sim::PeriodicTask>(
              sim(), *query().every, [this] { DeliverFix(); });
        }
      });
}

void LocalCxtProvider::OnNmea(const std::vector<std::byte>& data) {
  std::string burst(data.size(), '\0');
  std::memcpy(burst.data(), data.data(), data.size());
  auto fix = sensors::ParseNmeaBurst(burst);
  if (!fix.ok()) {
    CLOG_DEBUG(kModule, "bad NMEA burst: %s",
               fix.status().ToString().c_str());
    return;
  }
  latest_fix_ = *fix;
  latest_fix_at_ = sim().Now();
  switch (query().mode()) {
    case query::InteractionMode::kOnDemand:
      if (!first_delivery_done_) {
        first_delivery_done_ = true;
        Offer(ItemFromFix(*latest_fix_, latest_fix_at_));
        if (running()) CompleteOk();
      }
      break;
    case query::InteractionMode::kEventBased:
      // Every fix feeds the EVENT window; Offer() decides on delivery.
      Offer(ItemFromFix(*latest_fix_, latest_fix_at_));
      break;
    case query::InteractionMode::kPeriodic:
      break;  // the poller samples latest_fix_ at the EVERY rate
  }
}

void LocalCxtProvider::DeliverFix() {
  if (!latest_fix_.has_value()) return;
  Offer(ItemFromFix(*latest_fix_, latest_fix_at_));
}

CxtItem LocalCxtProvider::ItemFromFix(const sensors::GpsFix& fix,
                                      SimTime stamped_at) const {
  CxtItem item;
  item.id = sim().ids().NextId("item");
  item.type = query().select_type;
  if (item.type == vocab::kSpeed) {
    item.value = fix.speed_knots;
  } else {
    item.value = fix.position;
  }
  item.timestamp = stamped_at;
  item.source = {SourceKind::kIntSensor, "bt:" + gps_device_name_};
  item.metadata.accuracy = 10.0;  // meters, consumer-GPS class
  item.metadata.trust = TrustLevel::kTrusted;  // own sensor
  return item;
}

}  // namespace contory::core
