// CxtAggregator (Sec. 4.3).
//
// "A CxtAggregator can be used to combine context items collected from
// single or multiple CxtProviders." Two strategies:
//  * pass-through: deduplicate by item id (the same item can arrive over
//    several mechanisms when a query is assigned to multiple facades);
//  * numeric fusion: combine recent same-type readings into one item whose
//    value is the accuracy-weighted mean — "combining results collected
//    through different context mechanisms allows applications to partly
//    relieve the uncertainty of single context sources".
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_set>

#include "core/model/cxt_item.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

enum class AggregationStrategy : std::uint8_t {
  kPassThrough,
  kFuseNumeric,
};

struct AggregatorConfig {
  AggregationStrategy strategy = AggregationStrategy::kPassThrough;
  /// Readings within this window fuse together.
  SimDuration fusion_window = std::chrono::seconds{5};
  /// Dedup memory cap (ids remembered).
  std::size_t dedup_capacity = 256;
};

class CxtAggregator {
 public:
  CxtAggregator(sim::Simulation& sim, AggregatorConfig config = {});

  /// Feeds one collected item. Returns the item to deliver to the client,
  /// or nullopt when it was absorbed (duplicate, or fused into a later
  /// delivery).
  [[nodiscard]] std::optional<CxtItem> Process(CxtItem item);

  [[nodiscard]] AggregationStrategy strategy() const noexcept {
    return config_.strategy;
  }

 private:
  [[nodiscard]] bool IsDuplicate(const std::string& id);
  [[nodiscard]] CxtItem Fuse(const CxtItem& latest);

  sim::Simulation& sim_;
  AggregatorConfig config_;
  std::unordered_set<std::string> seen_ids_;
  std::deque<std::string> seen_order_;
  std::deque<CxtItem> window_;
};

}  // namespace contory::core
