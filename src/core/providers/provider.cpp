#include "core/providers/provider.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/query/predicate.hpp"

namespace contory::core {

CxtProvider::CxtProvider(sim::Simulation& sim, query::CxtQuery query,
                         Callbacks callbacks)
    : sim_(sim), query_(std::move(query)), callbacks_(std::move(callbacks)) {
  if (!callbacks_.deliver || !callbacks_.finished) {
    throw std::invalid_argument("CxtProvider: null callbacks");
  }
}

CxtProvider::~CxtProvider() {
  sim_.Cancel(duration_timer_);
  sim_.Cancel(retry_timer_);
}

void CxtProvider::Start() {
  if (running_) return;
  running_ = true;
  finished_ = false;
  if (query_.duration.time.has_value()) {
    duration_timer_ = sim_.ScheduleAfter(*query_.duration.time, [this] {
      duration_timer_ = sim::kInvalidTimer;
      FinishOnce(Status::Ok());
    }, "provider.duration");
  }
  DoStart();
}

void CxtProvider::Stop() {
  if (!running_) return;
  running_ = false;
  sim_.Cancel(duration_timer_);
  duration_timer_ = sim::kInvalidTimer;
  sim_.Cancel(retry_timer_);
  retry_timer_ = sim::kInvalidTimer;
  DoStop();
}

void CxtProvider::ConfigureRetry(const RetryPolicyConfig& config) {
  // Fork the retry rng off the simulation stream so backoff jitter is
  // deterministic per seed without perturbing other consumers.
  retry_state_.emplace(config, sim_.rng().Fork());
}

bool CxtProvider::RetryTransient(const Status& cause,
                                 std::function<void()> attempt) {
  if (!running_ || !retry_state_.has_value() || !IsTransient(cause)) {
    return false;
  }
  const auto backoff = retry_state_->NextBackoff(sim_.Now());
  if (!backoff.ok()) return false;  // budget or deadline spent: escalate
  ++retries_;
  CLOG_DEBUG("provider", "%s %s retry #%llu in %s after: %s", transport(),
             query_.id.c_str(), static_cast<unsigned long long>(retries_),
             FormatDuration(*backoff).c_str(), cause.ToString().c_str());
  sim_.Cancel(retry_timer_);
  retry_timer_ = sim_.ScheduleAfter(
      *backoff,
      [this, attempt = std::move(attempt)] {
        retry_timer_ = sim::kInvalidTimer;
        if (running_) attempt();
      },
      "provider.retry");
  return true;
}

SimDuration CxtProvider::AttemptTimeout() const noexcept {
  if (retry_state_.has_value()) return retry_state_->config().attempt_timeout;
  return std::chrono::seconds{30};
}

void CxtProvider::UpdateQuery(query::CxtQuery query) {
  query_ = std::move(query);
  if (running_ && query_.duration.time.has_value()) {
    sim_.Cancel(duration_timer_);
    duration_timer_ = sim_.ScheduleAfter(*query_.duration.time, [this] {
      duration_timer_ = sim::kInvalidTimer;
      FinishOnce(Status::Ok());
    }, "provider.duration");
  }
  if (running_) OnQueryUpdated();
}

SimDuration CxtProvider::DefaultPollPeriod() const {
  if (query_.every.has_value()) return *query_.every;
  if (query_.freshness.has_value()) {
    return std::max<SimDuration>(*query_.freshness / 2,
                                 std::chrono::seconds{1});
  }
  return std::chrono::seconds{5};
}

bool CxtProvider::PassesFilters(const CxtItem& item) const {
  if (item.type != query_.select_type) return false;
  if (item.IsExpired(sim_.Now())) return false;
  if (query_.freshness.has_value() &&
      !item.IsFresh(sim_.Now(), *query_.freshness)) {
    return false;
  }
  if (query_.where.has_value()) {
    const auto match = query::EvalWhere(*query_.where, item);
    if (!match.ok()) {
      CLOG_WARN("provider", "WHERE evaluation error for %s: %s",
                query_.id.c_str(), match.status().ToString().c_str());
      return false;
    }
    if (!*match) return false;
  }
  return true;
}

void CxtProvider::Deliver(const CxtItem& item) {
  ++delivered_;
  callbacks_.deliver(item);
  if (query_.duration.samples.has_value() &&
      delivered_ >= static_cast<std::uint64_t>(*query_.duration.samples)) {
    FinishOnce(Status::Ok());
  }
}

void CxtProvider::Offer(CxtItem item) {
  if (!running_) return;
  ++offered_;
  if (!PassesFilters(item)) return;
  if (query_.event.has_value()) {
    event_window_.push_back(item);
    while (event_window_.size() > kEventWindowCap) {
      event_window_.pop_front();
    }
    const std::vector<CxtItem> window{event_window_.begin(),
                                      event_window_.end()};
    const auto fire = query::EvalEvent(*query_.event, window);
    if (!fire.ok() || !*fire) return;
  }
  Deliver(item);
}

void CxtProvider::OfferPreEvaluated(CxtItem item) {
  if (!running_) return;
  ++offered_;
  if (!PassesFilters(item)) return;
  Deliver(item);
}

void CxtProvider::Fail(Status status) { FinishOnce(std::move(status)); }

void CxtProvider::CompleteOk() { FinishOnce(Status::Ok()); }

void CxtProvider::FinishOnce(Status status) {
  if (finished_) return;
  finished_ = true;
  Stop();
  callbacks_.finished(std::move(status));
}

}  // namespace contory::core
