// InfraCxtProvider (Sec. 4.3).
//
// "InfraCxtProviders are responsible for retrieving context data from
// remote context infrastructures." On-demand queries are a single
// request/response over the 2G/3GReference; long-running queries are
// registered at the infrastructure, whose pushes arrive as event
// notifications on the topic "cxt.<query id>". The infrastructure
// evaluates EVERY/EVENT server-side (saving the phone's radio), so pushed
// items bypass the local EVENT window.
#pragma once

#include <string>

#include "core/providers/provider.hpp"
#include "core/references/cellular_reference.hpp"
#include "infra/context_server.hpp"

namespace contory::core {

class InfraCxtProvider final : public CxtProvider {
 public:
  /// `infra_address` resolves from the query's FROM address or the
  /// device's default.
  InfraCxtProvider(sim::Simulation& sim, query::CxtQuery query,
                   Callbacks callbacks, CellularReference& cellular,
                   std::string infra_address);
  ~InfraCxtProvider() override;

  [[nodiscard]] query::SourceSel kind() const noexcept override {
    return query::SourceSel::kExtInfra;
  }
  [[nodiscard]] const char* transport() const noexcept override {
    return "UMTS event-based";
  }

  [[nodiscard]] static bool CanServe(const CellularReference& cellular,
                                     const std::string& infra_address);

 protected:
  void DoStart() override;
  void DoStop() override;

 private:
  [[nodiscard]] std::vector<std::byte> BuildRequest(
      infra::ServerOp op) const;
  void RunOnDemand();
  void RegisterLongRunning();
  void HandlePush(const infra::Event& event);

  CellularReference& cellular_;
  std::string infra_address_;
  std::string topic_;
  bool registered_ = false;
  std::shared_ptr<bool> life_ = std::make_shared<bool>(true);
};

}  // namespace contory::core
