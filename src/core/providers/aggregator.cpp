#include "core/providers/aggregator.hpp"

namespace contory::core {

CxtAggregator::CxtAggregator(sim::Simulation& sim, AggregatorConfig config)
    : sim_(sim), config_(config) {}

bool CxtAggregator::IsDuplicate(const std::string& id) {
  if (seen_ids_.contains(id)) return true;
  seen_ids_.insert(id);
  seen_order_.push_back(id);
  while (seen_order_.size() > config_.dedup_capacity) {
    seen_ids_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

CxtItem CxtAggregator::Fuse(const CxtItem& latest) {
  // Accuracy-weighted mean over the fusion window; an item with error
  // bound e contributes weight 1/e (unset accuracy counts as 1.0).
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  double best_accuracy = 1e300;
  for (const auto& item : window_) {
    const auto v = item.value.AsNumber();
    if (!v.ok()) continue;
    const double acc = item.metadata.accuracy.value_or(1.0);
    const double w = acc > 0 ? 1.0 / acc : 1.0;
    weighted_sum += *v * w;
    weight_total += w;
    best_accuracy = std::min(best_accuracy, acc);
  }
  CxtItem fused = latest;
  fused.id = sim_.ids().NextId("fused");
  if (weight_total > 0) fused.value = weighted_sum / weight_total;
  fused.source = {SourceKind::kApplication, "cxtAggregator"};
  if (best_accuracy < 1e300) fused.metadata.accuracy = best_accuracy;
  // Completeness improves with corroborating sources.
  fused.metadata.completeness =
      std::min(1.0, static_cast<double>(window_.size()) / 3.0);
  return fused;
}

std::optional<CxtItem> CxtAggregator::Process(CxtItem item) {
  if (IsDuplicate(item.id)) return std::nullopt;
  if (config_.strategy == AggregationStrategy::kPassThrough) {
    return item;
  }
  // Numeric fusion: non-numeric values pass through untouched.
  if (!item.value.is_number()) return item;
  const SimTime now = sim_.Now();
  window_.push_back(item);
  while (!window_.empty() &&
         now - window_.front().timestamp > config_.fusion_window) {
    window_.pop_front();
  }
  return Fuse(item);
}

}  // namespace contory::core
