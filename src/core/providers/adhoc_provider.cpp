#include "core/providers/adhoc_provider.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hpp"
#include "core/publisher.hpp"
#include "core/query/predicate.hpp"
#include "obs/observability.hpp"

namespace contory::core {
namespace {

constexpr const char* kModule = "adhoc";
constexpr SimDuration kDiscoveryMaxAge = std::chrono::seconds{60};
/// Per-hop budget for the finder round-trip timeout: a hop costs ~0.4 s
/// (Table 1 break-up); allow generous margin.
constexpr SimDuration kPerHopTimeout = std::chrono::milliseconds{1'500};

}  // namespace

std::string HomeTagName(net::NodeId node) {
  return "contory.node." + std::to_string(node);
}

std::vector<std::byte> FinderState::Encode() const {
  ByteWriter w;
  const auto qbytes = query.Serialize();
  w.WriteU32(static_cast<std::uint32_t>(qbytes.size()));
  w.WriteRaw(qbytes);
  w.WriteI64(remaining_nodes);
  w.WriteBool(homeward);
  w.WriteU32(static_cast<std::uint32_t>(results.size()));
  for (const auto& c : results) {
    c.item.Encode(w);
    w.WriteI64(c.hop);
  }
  return std::move(w).Take();
}

Result<FinderState> FinderState::Decode(const std::vector<std::byte>& data) {
  ByteReader r{data};
  FinderState state;
  const auto qlen = r.ReadU32();
  if (!qlen.ok()) return qlen.status();
  std::vector<std::byte> qbytes(*qlen);
  for (auto& b : qbytes) {
    const auto byte = r.ReadU8();
    if (!byte.ok()) return byte.status();
    b = std::byte{*byte};
  }
  auto q = query::CxtQuery::Deserialize(qbytes);
  if (!q.ok()) return q.status();
  state.query = *std::move(q);
  const auto remaining = r.ReadI64();
  if (!remaining.ok()) return remaining.status();
  state.remaining_nodes = static_cast<int>(*remaining);
  const auto homeward = r.ReadBool();
  if (!homeward.ok()) return homeward.status();
  state.homeward = *homeward;
  const auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto item = CxtItem::Deserialize(r);
    if (!item.ok()) return item.status();
    const auto hop = r.ReadI64();
    if (!hop.ok()) return hop.status();
    state.results.push_back(
        Collected{*std::move(item), static_cast<int>(*hop)});
  }
  return state;
}

namespace {

/// One step of SM-FINDER execution at the current node. Factored out of
/// the brick lambda for testability.
void FinderStep(sm::SmContext& ctx, sm::SmartMessage sm) {
  auto state = FinderState::Decode(sm.data);
  if (!state.ok()) {
    CLOG_WARN(kModule, "finder %s: bad state, dying: %s", sm.id.c_str(),
              state.status().ToString().c_str());
    return;
  }
  const std::string home_tag = HomeTagName(sm.origin);
  const std::string cxt_tag = CxtTagName(state->query.select_type);

  const auto go_home = [&](FinderState st) {
    st.homeward = true;
    sm.data = st.Encode();
    if (ctx.node == sm.origin) {
      ctx.runtime.DeliverReply(std::move(sm));
      return;
    }
    const auto next = ctx.runtime.NextHopTowardTag(home_tag);
    if (next.ok()) {
      ctx.runtime.Migrate(std::move(sm), *next);
    }
    // No route home: the SM dies; the issuer's timeout covers it.
  };

  if (state->homeward) {
    go_home(*std::move(state));
    return;
  }

  // Collect at this node (never at the origin itself: adHocNetwork asks
  // *other* nodes).
  if (ctx.node != sm.origin && ctx.runtime.tags().Has(cxt_tag)) {
    const auto tag = ctx.runtime.tags().Read(cxt_tag);  // public items only
    if (tag.ok()) {
      const auto bytes = FromHex(tag->value);
      if (bytes.ok()) {
        auto item = CxtItem::Deserialize(*bytes);
        if (item.ok()) {
          // "WHERE, FRESHNESS and EVENTS requirements specified in the
          // query are evaluated" at the provider's node.
          bool matches = !item->IsExpired(ctx.sim.Now());
          if (matches && state->query.freshness.has_value()) {
            matches = item->IsFresh(ctx.sim.Now(), *state->query.freshness);
          }
          if (matches && state->query.where.has_value()) {
            const auto ok = query::EvalWhere(*state->query.where, *item);
            matches = ok.ok() && *ok;
          }
          const bool already =
              std::any_of(state->results.begin(), state->results.end(),
                          [&](const FinderState::Collected& c) {
                            return c.item.id == item->id;
                          });
          if (matches && !already) {
            item->source = {SourceKind::kAdHocNetwork,
                            "node:" + std::to_string(ctx.node)};
            state->results.push_back(
                FinderState::Collected{*std::move(item), sm.hop_count});
            if (state->remaining_nodes > 0) --state->remaining_nodes;
          }
        }
      }
    }
  }

  // Budget checks: enough nodes collected, or hop budget exhausted.
  if (state->remaining_nodes == 0 ||
      (sm.max_hops > 0 && sm.hop_count >= sm.max_hops)) {
    go_home(*std::move(state));
    return;
  }

  // Continue outward toward the nearest *unvisited* node with the tag.
  std::unordered_set<net::NodeId> exclude{sm.visited.begin(),
                                          sm.visited.end()};
  exclude.insert(sm.origin);
  const auto next = ctx.runtime.NextHopTowardTag(cxt_tag, exclude);
  if (!next.ok()) {
    go_home(*std::move(state));
    return;
  }
  sm.data = state->Encode();
  ctx.runtime.Migrate(std::move(sm), *next);
}

}  // namespace

void RegisterFinderBrick(sm::SmRuntime& runtime) {
  if (runtime.HasCodeBrick(kFinderBrick)) return;
  runtime.RegisterCodeBrick(
      kFinderBrick, kFinderCodeBytes,
      [](sm::SmContext& ctx, sm::SmartMessage sm) {
        FinderStep(ctx, std::move(sm));
      });
}

AdHocCxtProvider::AdHocCxtProvider(sim::Simulation& sim,
                                   query::CxtQuery query, Callbacks callbacks,
                                   BTReference& bt, WiFiReference& wifi,
                                   AccessController& access, Client* client,
                                   AdHocTransport transport,
                                   int finder_retries)
    : CxtProvider(sim, std::move(query), std::move(callbacks)),
      bt_(bt),
      wifi_(wifi),
      access_(access),
      client_(client),
      transport_policy_(transport),
      finder_retries_(finder_retries),
      retries_left_(finder_retries) {}

AdHocCxtProvider::~AdHocCxtProvider() {
  *life_ = false;
  DoStop();
}

bool AdHocCxtProvider::CanServe(const BTReference& bt,
                                const WiFiReference& wifi) {
  return bt.Available() || wifi.Available();
}

query::AdHocScope AdHocCxtProvider::Scope() const {
  for (const auto& src : query().from.sources) {
    if (src.kind == query::SourceSel::kAdHocNetwork &&
        src.scope.has_value()) {
      return *src.scope;
    }
  }
  return query::AdHocScope{};  // all nodes, 1 hop
}

void AdHocCxtProvider::DoStart() {
  const query::AdHocScope scope = Scope();
  switch (transport_policy_) {
    case AdHocTransport::kForceBt:
      use_wifi_ = false;
      break;
    case AdHocTransport::kForceWifi:
      use_wifi_ = true;
      break;
    case AdHocTransport::kAuto:
      // "BTReference (only for one-hop routing) or the WiFiReference
      // (also for multi-hop routing)": multi-hop scope needs WiFi; for
      // one hop prefer the cheap radio when present.
      if (scope.num_hops > 1) {
        use_wifi_ = wifi_.Available();
      } else {
        use_wifi_ = !bt_.Available() && wifi_.Available();
      }
      break;
  }
  if (use_wifi_) {
    if (!wifi_.Available()) {
      sim().ScheduleAfter(SimDuration::zero(), [this, life = life_] {
        if (*life && running()) Fail(Unavailable("wifi unavailable"));
      });
      return;
    }
    WifiLaunchRound();
    if (query().mode() != query::InteractionMode::kOnDemand) {
      round_timer_ = std::make_unique<sim::PeriodicTask>(
          sim(), DefaultPollPeriod(), [this] { WifiLaunchRound(); });
    }
    return;
  }
  if (!bt_.Available()) {
    sim().ScheduleAfter(SimDuration::zero(), [this, life = life_] {
      if (*life && running()) Fail(Unavailable("bluetooth unavailable"));
    });
    return;
  }
  BtStart();
}

void AdHocCxtProvider::DoStop() {
  round_timer_.reset();
  sim().Cancel(finder_timeout_);
  finder_timeout_ = sim::kInvalidTimer;
  if (!active_finder_id_.empty() && wifi_.sm() != nullptr) {
    wifi_.sm()->UnregisterReplyHandler(active_finder_id_);
    active_finder_id_.clear();
  }
  if (bt_data_listener_ != 0) {
    bt_.RemoveDataListener(bt_data_listener_);
    bt_data_listener_ = 0;
  }
  if (bt_disc_listener_ != 0) {
    bt_.RemoveDisconnectListener(bt_disc_listener_);
    bt_disc_listener_ = 0;
  }
  if (bt_.controller() != nullptr) {
    for (const auto& [device, link] : bt_links_) {
      bt_.controller()->Disconnect(link);
    }
  }
  bt_links_.clear();
}

void AdHocCxtProvider::OnQueryUpdated() {
  if (round_timer_ != nullptr) round_timer_->SetPeriod(DefaultPollPeriod());
}

// --- BT transport -------------------------------------------------------

void AdHocCxtProvider::BtStart() {
  bt_data_listener_ = bt_.AddDataListener(
      [this](net::BtLinkId link, net::NodeId from,
             const std::vector<std::byte>& frame) {
        if (!awaiting_poll_.contains(link)) return;
        auto item = ParseCxtGetResponse(frame);
        awaiting_poll_.erase(link);
        if (item.ok()) {
          item->source = {SourceKind::kAdHocNetwork,
                          "node:" + std::to_string(from)};
          Offer(*std::move(item));
        }
      });
  bt_disc_listener_ = bt_.AddDisconnectListener(
      [this](net::BtLinkId link, net::NodeId peer) {
        for (auto it = bt_links_.begin(); it != bt_links_.end(); ++it) {
          if (it->second == link) {
            bt_links_.erase(it);
            break;
          }
        }
        awaiting_poll_.erase(link);
        (void)peer;
        if (bt_links_.empty() &&
            query().mode() != query::InteractionMode::kOnDemand &&
            first_round_done_) {
          Fail(Unavailable("all ad hoc BT providers disconnected"));
        }
      });
  BtDiscover();
}

void AdHocCxtProvider::BtDiscover() {
  bt_.Discover(kDiscoveryMaxAge,
               [this, life = life_](
                   Result<std::vector<net::BtDeviceInfo>> devices) {
                 if (!*life || !running()) return;
                 if (!devices.ok()) {
                   // A failed inquiry is usually a radio flap or an
                   // interference burst: back off and re-run discovery
                   // before abandoning the mechanism.
                   if (RetryTransient(devices.status(),
                                      [this] { BtDiscover(); })) {
                     return;
                   }
                   Fail(devices.status());
                   return;
                 }
                 RetrySucceeded();
                 const query::AdHocScope scope = Scope();
                 const int budget =
                     scope.all_nodes() ? -1 : scope.num_nodes;
                 BtDiscoverProviders(*std::move(devices), 0, budget);
               });
}

void AdHocCxtProvider::BtDiscoverProviders(
    std::vector<net::BtDeviceInfo> devices, std::size_t index, int budget) {
  if (index >= devices.size() || budget == 0) {
    BtRoundDone();
    return;
  }
  const auto device = devices[index];
  const std::string address = "bt:" + device.name;
  if (!access_.Admit(address, client_)) {
    BtDiscoverProviders(std::move(devices), index + 1, budget);
    return;
  }
  bt_.controller()->DiscoverServices(
      device.node, CxtServiceName(query().select_type),
      [this, life = life_, devices = std::move(devices), index, budget,
       device](Result<std::vector<net::ServiceRecord>> records) mutable {
        if (!*life || !running()) return;
        int next_budget = budget;
        if (records.ok() && !records->empty()) {
          ++bt_providers_found_;
          // The DataElement in the service record is the current item.
          auto item = CxtItem::Deserialize(records->front().data_element);
          if (item.ok()) {
            item->source = {SourceKind::kAdHocNetwork, "bt:" + device.name};
            Offer(*std::move(item));
          }
          if (next_budget > 0) --next_budget;
          if (query().mode() != query::InteractionMode::kOnDemand) {
            BtConnectAndPoll(device.node);
          }
        }
        BtDiscoverProviders(std::move(devices), index + 1, next_budget);
      });
}

void AdHocCxtProvider::BtRoundDone() {
  first_round_done_ = true;
  if (!running()) return;
  if (query().mode() == query::InteractionMode::kOnDemand) {
    if (bt_providers_found_ == 0) {
      // Completing "successfully" with zero results would end the query
      // without giving the factory a chance to fail over (or serve a
      // degraded answer); report the empty neighborhood instead.
      Fail(NotFound("no BT peers publish '" + query().select_type + "'"));
      return;
    }
    CompleteOk();
    return;
  }
  if (bt_providers_found_ == 0) {
    // No publishing peer at all: periodic re-discovery would burn 5 J per
    // round; fail over so the factory can reconsider. (Connections to
    // found peers may still be in flight — that is fine, BtPollAll polls
    // whatever links exist each round.)
    Fail(NotFound("no BT peers publish '" + query().select_type + "'"));
    return;
  }
  if (round_timer_ == nullptr) {
    round_timer_ = std::make_unique<sim::PeriodicTask>(
        sim(), DefaultPollPeriod(), [this] { BtPollAll(); });
  }
}

void AdHocCxtProvider::BtConnectAndPoll(net::NodeId device) {
  bt_.controller()->Connect(
      device, [this, life = life_, device](Result<net::BtLinkId> link) {
        if (!*life || !running()) return;
        if (!link.ok()) return;
        bt_links_[device] = *link;
      });
}

void AdHocCxtProvider::BtPollAll() {
  for (const auto& [device, link] : bt_links_) {
    awaiting_poll_.insert(link);
    bt_.controller()->Send(link,
                           BuildCxtGetRequest(query().select_type, ""));
  }
}

// --- WiFi transport -----------------------------------------------------

void AdHocCxtProvider::WifiLaunchRound() {
  sm::SmRuntime* rt = wifi_.sm();
  if (rt == nullptr || !wifi_.Available()) {
    Fail(Unavailable("wifi/SM runtime unavailable"));
    return;
  }
  if (!active_finder_id_.empty()) return;  // previous round in flight

  const query::AdHocScope scope = Scope();
  FinderState state;
  state.query = query();
  state.remaining_nodes = scope.all_nodes() ? -1 : scope.num_nodes;

  sm::SmartMessage sm;
  sm.id = sim().ids().NextId("sm-finder");
  sm.code_brick = kFinderBrick;
  sm.origin = rt->node();
  sm.target_tag = CxtTagName(query().select_type);
  sm.max_hops = scope.num_hops;
  sm.data = state.Encode();
  // Hop spans of this finder nest under the query's provision span.
  COBS(sm.trace_parent = trace_span());
  active_finder_id_ = sm.id;

  rt->RegisterReplyHandler(sm.id, [this, life = life_](
                                      sm::SmartMessage reply) {
    if (!*life) return;
    WifiRoundReply(std::move(reply));
  });

  // "If no valid result is received within a certain timeout, the query
  // is cancelled."
  const auto timeout =
      kPerHopTimeout * (2 * (static_cast<std::size_t>(scope.num_hops) + 1));
  finder_timeout_ = sim().ScheduleAfter(
      timeout, [this, finder_id = sm.id] { WifiRoundTimeout(finder_id); },
      "adhoc.finder_timeout");

  const Status injected = rt->Inject(std::move(sm));
  if (!injected.ok()) {
    sim().Cancel(finder_timeout_);
    finder_timeout_ = sim::kInvalidTimer;
    rt->UnregisterReplyHandler(active_finder_id_);
    active_finder_id_.clear();
    Fail(injected);
  }
}

void AdHocCxtProvider::WifiRoundReply(sm::SmartMessage reply) {
  if (reply.id != active_finder_id_) return;
  sim().Cancel(finder_timeout_);
  finder_timeout_ = sim::kInvalidTimer;
  active_finder_id_.clear();
  COBS({
    static obs::Histogram& hops = obs::Observability::metrics().GetHistogram(
        "sm_finder_hops", {}, obs::DefaultHopBounds());
    hops.Observe(static_cast<double>(reply.hop_count));
  });

  auto state = FinderState::Decode(reply.data);
  if (!state.ok()) {
    CLOG_WARN(kModule, "finder reply undecodable: %s",
              state.status().ToString().c_str());
    return;
  }
  const query::AdHocScope scope = Scope();
  for (auto& collected : state->results) {
    // "if hopCnt>numHops the receiver discards the result because the
    // CxtPublisher that provided such a result is out of the range of
    // interest."
    if (scope.num_hops > 0 && collected.hop > scope.num_hops) {
      CLOG_DEBUG(kModule, "discarding result from hop %d (> %d)",
                 collected.hop, scope.num_hops);
      continue;
    }
    Offer(std::move(collected.item));
  }
  if (query().mode() == query::InteractionMode::kOnDemand && running()) {
    CompleteOk();
  }
}

void AdHocCxtProvider::WifiRoundTimeout(const std::string& finder_id) {
  if (finder_id != active_finder_id_) return;
  finder_timeout_ = sim::kInvalidTimer;
  if (wifi_.sm() != nullptr) {
    wifi_.sm()->UnregisterReplyHandler(active_finder_id_);
  }
  active_finder_id_.clear();
  CLOG_DEBUG(kModule, "finder %s timed out", finder_id.c_str());
  if (query().mode() == query::InteractionMode::kOnDemand) {
    if (retries_left_ > 0) {
      // Reliability extension: a lost SM (mobility, admission rejection)
      // costs one timeout, not the whole query.
      --retries_left_;
      CLOG_INFO(kModule, "relaunching finder round (%d retr%s left)",
                retries_left_, retries_left_ == 1 ? "y" : "ies");
      WifiLaunchRound();
      return;
    }
    Fail(DeadlineExceeded("no finder reply within timeout"));
  }
  // Periodic/event rounds simply skip; the next round may succeed.
}

}  // namespace contory::core
