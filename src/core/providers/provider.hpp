// CxtProvider base (Sec. 4.3).
//
// "CxtProviders are responsible for accomplishing context provisioning.
// ... Based on the EVENT and EVERY clauses specification, context
// providers offer three modes of interaction: on-demand query,
// event-based query, and periodic query."
//
// The base class owns the query-lifecycle machinery every concrete
// provider shares: the DURATION timer (time- or sample-bounded), WHERE +
// FRESHNESS filtering, the EVENT evaluation window, and delivery/
// completion callbacks. Subclasses implement the transport: local
// sensors, the remote infrastructure, or the ad hoc network.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "core/model/cxt_item.hpp"
#include "core/query/query.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class CxtProvider {
 public:
  struct Callbacks {
    /// A result matching the (merged) query. The Facade post-extracts per
    /// original query before clients see it.
    std::function<void(const CxtItem&)> deliver;
    /// Query over: Ok = duration/samples complete; error = the transport
    /// failed and the factory should reconfigure (Fig. 5).
    std::function<void(Status)> finished;
  };

  CxtProvider(sim::Simulation& sim, query::CxtQuery query,
              Callbacks callbacks);
  virtual ~CxtProvider();

  CxtProvider(const CxtProvider&) = delete;
  CxtProvider& operator=(const CxtProvider&) = delete;

  /// Which provisioning mechanism this provider implements.
  [[nodiscard]] virtual query::SourceSel kind() const noexcept = 0;
  /// Human-readable transport detail ("BT one-hop", "WiFi SM", ...).
  [[nodiscard]] virtual const char* transport() const noexcept = 0;

  /// Begins provisioning: arms the DURATION timer then calls DoStart().
  void Start();
  /// Cancels provisioning silently (no finished callback).
  void Stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Applies a merged/updated query ("each CxtProvider is assigned only
  /// to one (single or merged) query at time"). Re-arms the duration
  /// timer and informs the subclass (rate changes etc.).
  void UpdateQuery(query::CxtQuery query);

  /// Arms the transient-failure retry policy: transports that report a
  /// retryable failure through RetryTransient() back off and re-attempt
  /// (seeded jitter, bounded budget) before escalating Fail() to the
  /// factory. Providers without a configured policy never retry.
  void ConfigureRetry(const RetryPolicyConfig& config);

  [[nodiscard]] const query::CxtQuery& query() const noexcept {
    return query_;
  }
  [[nodiscard]] std::uint64_t items_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t items_offered() const noexcept {
    return offered_;
  }
  /// Transient-failure retries scheduled so far (diagnostics, benches).
  [[nodiscard]] std::uint64_t retries_attempted() const noexcept {
    return retries_;
  }

  /// Open tracer span (the query's provision stage, or its root) this
  /// provider's transport activity should nest under — the AdHoc WiFi
  /// transport threads it through its SM-FINDERs so per-hop spans land
  /// in the right query tree. 0 (the default) = untraced; the factory
  /// sets it at provider creation when observability is on.
  void SetTraceSpan(std::uint64_t span) noexcept { trace_span_ = span; }
  [[nodiscard]] std::uint64_t trace_span() const noexcept {
    return trace_span_;
  }

 protected:
  virtual void DoStart() = 0;
  virtual void DoStop() = 0;
  /// Rate or scope may have changed (called while running).
  virtual void OnQueryUpdated() {}

  /// Feeds one collected item through the full pipeline: WHERE +
  /// FRESHNESS filtering, EVENT windowing, sample counting, delivery.
  void Offer(CxtItem item);

  /// Same but skips EVENT evaluation — for transports whose remote side
  /// already evaluated the EVENT condition (infrastructure-registered
  /// queries).
  void OfferPreEvaluated(CxtItem item);

  /// Subclass-reported unrecoverable transport failure: stops and calls
  /// finished(status).
  void Fail(Status status);

  /// If `cause` is transient and the configured retry policy allows
  /// another attempt, schedules `attempt` after the next backoff and
  /// returns true (the caller should simply return). Otherwise returns
  /// false and the caller escalates with Fail(cause).
  bool RetryTransient(const Status& cause, std::function<void()> attempt);

  /// Per-attempt transport timeout from the retry policy (the transport
  /// default when no policy is configured).
  [[nodiscard]] SimDuration AttemptTimeout() const noexcept;

  /// Marks the current attempt successful: a later transient failure
  /// starts over with a fresh retry budget.
  void RetrySucceeded() noexcept {
    if (retry_state_.has_value()) retry_state_->Reset();
  }

  /// On-demand round complete: stops and calls finished(Ok).
  void CompleteOk();

  [[nodiscard]] sim::Simulation& sim() const noexcept { return sim_; }

  /// Poll rate used when collecting samples for EVENT queries or
  /// on-demand rounds where the query names no EVERY.
  [[nodiscard]] SimDuration DefaultPollPeriod() const;

 private:
  [[nodiscard]] bool PassesFilters(const CxtItem& item) const;
  void Deliver(const CxtItem& item);
  void FinishOnce(Status status);

  sim::Simulation& sim_;
  query::CxtQuery query_;
  Callbacks callbacks_;
  bool running_ = false;
  bool finished_ = false;
  sim::TimerId duration_timer_ = sim::kInvalidTimer;
  sim::TimerId retry_timer_ = sim::kInvalidTimer;
  std::optional<RetryState> retry_state_;
  std::uint64_t retries_ = 0;
  std::deque<CxtItem> event_window_;
  std::uint64_t delivered_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t trace_span_ = 0;

  static constexpr std::size_t kEventWindowCap = 32;
};

}  // namespace contory::core
