// LocalCxtProvider (Sec. 4.3).
//
// "LocalCxtProviders manage the access to local sensors which can be
// integrated in the device or be accessible via BT. These providers
// periodically pull sensor devices and report values that match WHERE and
// FRESHNESS requirements."
//
// Two transports:
//  * integrated sensors (InternalReference): sampled at the query rate;
//  * a Bluetooth GPS receiver for location/speed queries: discovery (via
//    the BTReference cache), SDP lookup of the NMEA service, connection,
//    then parsing the 1 Hz NMEA stream. A dropped GPS link is reported as
//    a provider failure, which is what lets the ContextFactory switch to
//    ad hoc provisioning in the Fig. 5 experiment.
#pragma once

#include <memory>
#include <optional>

#include "core/access_controller.hpp"
#include "core/providers/provider.hpp"
#include "core/references/bt_reference.hpp"
#include "core/references/internal_reference.hpp"
#include "sensors/gps.hpp"

namespace contory::core {

class LocalCxtProvider final : public CxtProvider {
 public:
  LocalCxtProvider(sim::Simulation& sim, query::CxtQuery query,
                   Callbacks callbacks, InternalReference& internal,
                   BTReference& bt, AccessController& access,
                   Client* client);
  ~LocalCxtProvider() override;

  [[nodiscard]] query::SourceSel kind() const noexcept override {
    return query::SourceSel::kIntSensor;
  }
  [[nodiscard]] const char* transport() const noexcept override {
    return gps_mode_ ? "BT-GPS" : "internal-sensor";
  }

  /// Can this device serve `q` locally at all (used by the factory's
  /// mechanism selection)?
  [[nodiscard]] static bool CanServe(const query::CxtQuery& q,
                                     const InternalReference& internal,
                                     const BTReference& bt);

 protected:
  void DoStart() override;
  void DoStop() override;
  void OnQueryUpdated() override;

 private:
  void StartSensorMode();
  void SampleSensorOnce();
  void StartGpsMode();
  void SearchGpsService(std::vector<net::BtDeviceInfo> devices,
                        std::size_t index);
  void ConnectGps(net::NodeId device, std::string device_name);
  void OnNmea(const std::vector<std::byte>& data);
  void DeliverFix();
  [[nodiscard]] CxtItem ItemFromFix(const sensors::GpsFix& fix,
                                    SimTime stamped_at) const;

  InternalReference& internal_;
  BTReference& bt_;
  AccessController& access_;
  Client* client_;
  bool gps_mode_ = false;
  std::unique_ptr<sim::PeriodicTask> poller_;
  BTReference::ListenerId data_listener_ = 0;
  BTReference::ListenerId disconnect_listener_ = 0;
  net::BtLinkId gps_link_ = 0;
  std::string gps_device_name_;
  std::optional<sensors::GpsFix> latest_fix_;
  SimTime latest_fix_at_{};
  bool first_delivery_done_ = false;
  /// Outlives `this` in async BT callbacks.
  std::shared_ptr<bool> life_ = std::make_shared<bool>(true);
};

}  // namespace contory::core
