#include "core/providers/infra_provider.hpp"

#include "common/logging.hpp"
#include "infra/event_broker.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "infra-prov";
}

InfraCxtProvider::InfraCxtProvider(sim::Simulation& sim,
                                   query::CxtQuery query, Callbacks callbacks,
                                   CellularReference& cellular,
                                   std::string infra_address)
    : CxtProvider(sim, std::move(query), std::move(callbacks)),
      cellular_(cellular),
      infra_address_(std::move(infra_address)),
      topic_("cxt." + this->query().id) {}

InfraCxtProvider::~InfraCxtProvider() {
  *life_ = false;
  DoStop();
}

bool InfraCxtProvider::CanServe(const CellularReference& cellular,
                                const std::string& infra_address) {
  return cellular.Available() && !infra_address.empty();
}

std::vector<std::byte> InfraCxtProvider::BuildRequest(
    infra::ServerOp op) const {
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(op));
  const auto qbytes = query().Serialize();
  w.WriteU32(static_cast<std::uint32_t>(qbytes.size()));
  w.WriteRaw(qbytes);
  // Everything over the event-based platform travels notification-sized.
  if (w.size() < infra::kEventNotificationBytes) {
    w.WritePadding(infra::kEventNotificationBytes - w.size());
  }
  return std::move(w).Take();
}

void InfraCxtProvider::DoStart() {
  if (!cellular_.Available()) {
    sim().ScheduleAfter(SimDuration::zero(), [this, life = life_] {
      if (!*life || !running()) return;
      Fail(Unavailable("cellular radio unavailable for extInfra query"));
    });
    return;
  }
  if (query().mode() == query::InteractionMode::kOnDemand) {
    RunOnDemand();
  } else {
    RegisterLongRunning();
  }
}

void InfraCxtProvider::DoStop() {
  cellular_.RemoveTopicHandler(topic_);
  if (registered_ && cellular_.Available()) {
    registered_ = false;
    ByteWriter w;
    w.WriteU8(static_cast<std::uint8_t>(infra::ServerOp::kCancelQuery));
    w.WriteString(query().id);
    cellular_.SendRequest(infra_address_, std::move(w).Take(),
                          [](Result<std::vector<std::byte>>) {});
  }
}

void InfraCxtProvider::RunOnDemand() {
  cellular_.SendRequest(
      infra_address_, BuildRequest(infra::ServerOp::kQuery),
      [this, life = life_](Result<std::vector<std::byte>> response) {
        if (!*life || !running()) return;
        if (!response.ok()) {
          // Coverage gaps and server outages surface as transient errors:
          // back off and re-issue the whole round before giving up.
          if (RetryTransient(response.status(), [this] { RunOnDemand(); })) {
            return;
          }
          Fail(response.status());
          return;
        }
        RetrySucceeded();
        ByteReader r{*response};
        const auto ok = r.ReadU8();
        if (!ok.ok() || *ok != 1) {
          Fail(Internal("infrastructure rejected query"));
          return;
        }
        const auto count = r.ReadU32();
        if (!count.ok()) {
          Fail(count.status());
          return;
        }
        for (std::uint32_t i = 0; i < *count && running(); ++i) {
          auto item = CxtItem::Deserialize(r);
          if (!item.ok()) {
            Fail(item.status());
            return;
          }
          Offer(*std::move(item));
        }
        if (running()) CompleteOk();
      },
      AttemptTimeout());
}

void InfraCxtProvider::RegisterLongRunning() {
  cellular_.SetTopicHandler(
      topic_, [this](const infra::Event& event) { HandlePush(event); });
  cellular_.SendRequest(
      infra_address_, BuildRequest(infra::ServerOp::kRegisterQuery),
      [this, life = life_](Result<std::vector<std::byte>> response) {
        if (!*life || !running()) return;
        if (!response.ok()) {
          if (RetryTransient(response.status(),
                             [this] { RegisterLongRunning(); })) {
            return;
          }
          Fail(response.status());
          return;
        }
        RetrySucceeded();
        ByteReader r{*response};
        const auto ok = r.ReadU8();
        if (!ok.ok() || *ok != 1) {
          Fail(Internal("infrastructure rejected registration"));
          return;
        }
        registered_ = true;
        CLOG_DEBUG(kModule, "query %s registered at %s", query().id.c_str(),
                   infra_address_.c_str());
      },
      AttemptTimeout());
}

void InfraCxtProvider::HandlePush(const infra::Event& event) {
  if (!running()) return;
  ByteReader r{event.payload};
  const auto count = r.ReadU32();
  if (!count.ok()) return;
  for (std::uint32_t i = 0; i < *count && running(); ++i) {
    auto item = CxtItem::Deserialize(r);
    if (!item.ok()) {
      CLOG_WARN(kModule, "bad pushed item: %s",
                item.status().ToString().c_str());
      return;
    }
    // The server already applied EVERY/EVENT; skip local event windowing.
    OfferPreEvaluated(*std::move(item));
  }
}

}  // namespace contory::core
