// AdHocCxtProvider (Sec. 4.3, 5.2).
//
// "AdHocCxtProviders are responsible for supporting distributed context
// provisioning in ad hoc networks; to gather context data from nodes in a
// MANET, these providers utilize the BTReference (only for one-hop
// routing) or the WiFiReference (also for multi-hop routing)."
//
// BT transport (one hop): inquiry (cached) -> SDP lookup of
// "contory.cxt.<type>" records -> item from the DataElement; periodic
// queries then poll over maintained links (kCxtGetOp) without repeating
// discovery — the cheap row of Table 2.
//
// WiFi transport (multi hop): an SM-FINDER carrying the query migrates
// toward nodes exposing the context tag, evaluates WHERE/FRESHNESS where
// the data lives, collects up to numNodes items each with its hop
// distance, then routes home ("contory.node.<origin>" tag). At the issuer
// "if hopCnt>numHops the receiver discards the result". A per-round
// timeout cancels lost finders.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/access_controller.hpp"
#include "core/providers/provider.hpp"
#include "core/references/bt_reference.hpp"
#include "core/references/wifi_reference.hpp"

namespace contory::core {

/// Tag every Contory node exposes so SM-FINDERs can route home.
[[nodiscard]] std::string HomeTagName(net::NodeId node);

/// The code brick id of the SM-FINDER; registered on every Contory node.
inline constexpr const char* kFinderBrick = "contory.sm-finder";
/// Wire size of the finder's code brick (query-evaluation logic; the code
/// cache elides it on later visits).
inline constexpr std::size_t kFinderCodeBytes = 700;

/// The finder's mobile data bricks.
struct FinderState {
  query::CxtQuery query;
  /// Remaining node budget (-1 = all reachable nodes).
  int remaining_nodes = -1;
  bool homeward = false;
  struct Collected {
    CxtItem item;
    int hop = 0;  // hopCnt when the item was collected
  };
  std::vector<Collected> results;

  [[nodiscard]] std::vector<std::byte> Encode() const;
  [[nodiscard]] static Result<FinderState> Decode(
      const std::vector<std::byte>& data);
};

/// Installs the SM-FINDER code brick on `runtime` (idempotent). Every
/// Contory node does this at startup so finder code can execute anywhere.
void RegisterFinderBrick(sm::SmRuntime& runtime);

/// Which radio an ad hoc provider should use.
enum class AdHocTransport : std::uint8_t {
  kAuto,      // WiFi when multi-hop is asked for and available, else BT
  kForceBt,   // control policy: reducePower replaces WiFi with BT one-hop
  kForceWifi,
};

class AdHocCxtProvider final : public CxtProvider {
 public:
  /// `finder_retries`: how many times an on-demand SM-FINDER round is
  /// relaunched after a timeout before the query fails — the paper's
  /// future-work direction of "more efficient and reliable context
  /// provisioning in mobile ad hoc networks". Lost finders are common
  /// under mobility (an intermediate node moves mid-migration).
  AdHocCxtProvider(sim::Simulation& sim, query::CxtQuery query,
                   Callbacks callbacks, BTReference& bt, WiFiReference& wifi,
                   AccessController& access, Client* client,
                   AdHocTransport transport = AdHocTransport::kAuto,
                   int finder_retries = 1);
  ~AdHocCxtProvider() override;

  [[nodiscard]] query::SourceSel kind() const noexcept override {
    return query::SourceSel::kAdHocNetwork;
  }
  [[nodiscard]] const char* transport() const noexcept override {
    return use_wifi_ ? "WiFi SM multi-hop" : "BT one-hop";
  }
  [[nodiscard]] bool using_wifi() const noexcept { return use_wifi_; }

  [[nodiscard]] static bool CanServe(const BTReference& bt,
                                     const WiFiReference& wifi);

 protected:
  void DoStart() override;
  void DoStop() override;
  void OnQueryUpdated() override;

 private:
  [[nodiscard]] query::AdHocScope Scope() const;

  // --- BT transport -----------------------------------------------------
  void BtStart();
  void BtDiscover();
  void BtDiscoverProviders(std::vector<net::BtDeviceInfo> devices,
                           std::size_t index, int budget);
  void BtRoundDone();
  void BtConnectAndPoll(net::NodeId device);
  void BtPollAll();

  // --- WiFi transport ------------------------------------------------------
  void WifiLaunchRound();
  void WifiRoundReply(sm::SmartMessage reply);
  void WifiRoundTimeout(const std::string& finder_id);

  BTReference& bt_;
  WiFiReference& wifi_;
  AccessController& access_;
  Client* client_;
  AdHocTransport transport_policy_;
  bool use_wifi_ = false;

  std::unique_ptr<sim::PeriodicTask> round_timer_;
  // BT state
  std::size_t bt_providers_found_ = 0;
  std::map<net::NodeId, net::BtLinkId> bt_links_;  // provider device links
  BTReference::ListenerId bt_data_listener_ = 0;
  BTReference::ListenerId bt_disc_listener_ = 0;
  std::set<net::BtLinkId> awaiting_poll_;
  // WiFi state
  std::string active_finder_id_;
  sim::TimerId finder_timeout_ = sim::kInvalidTimer;
  bool first_round_done_ = false;
  int finder_retries_;
  int retries_left_ = 0;

  std::shared_ptr<bool> life_ = std::make_shared<bool>(true);
};

}  // namespace contory::core
