// Binding between one Contory instance and the device it runs on.
//
// The middleware is constructed over whatever radios and sensors the
// device actually has — a Nokia 6630 has BT + UMTS but no WiFi, the 9500
// communicator has WiFi, a bare test device may have nothing. Null
// pointers mean "this device does not have that module"; the references
// and the factory degrade gracefully (that heterogeneity is the paper's
// whole point).
#pragma once

#include <string>

#include "net/bluetooth.hpp"
#include "net/cellular.hpp"
#include "net/medium.hpp"
#include "net/wifi.hpp"
#include "phone/smart_phone.hpp"
#include "sensors/environment.hpp"
#include "sim/simulation.hpp"
#include "sm/sm_runtime.hpp"

namespace contory::core {

struct DeviceServices {
  sim::Simulation* sim = nullptr;        // required
  phone::SmartPhone* phone = nullptr;    // required
  net::Medium* medium = nullptr;         // required
  net::NodeId node = net::kInvalidNode;  // required

  net::BluetoothController* bt = nullptr;    // optional
  net::WifiController* wifi = nullptr;       // optional
  sm::SmRuntime* sm = nullptr;               // optional (needs wifi)
  net::CellularModem* modem = nullptr;       // optional

  /// Shared synthetic environment; internal sensors sample it.
  sensors::EnvironmentField* environment = nullptr;  // optional

  /// Default context-infrastructure address for extInfra queries whose
  /// FROM clause names no host.
  std::string default_infra_address;

  /// Validates the required fields; throws std::invalid_argument.
  void CheckRequired() const;
};

}  // namespace contory::core
