// CxtRepository (Sec. 4.3).
//
// "The CxtRepository module is responsible for storing gathered context
// information, locally or remotely. Only a few recent context data are
// stored locally, while complete logs can be stored in remote repositories
// of context infrastructures." This is the local side — small per-type
// rings sized for a 9 MB phone; remote storage goes through the
// ContextFactory's storeCxtItem path.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "core/model/cxt_item.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

struct CxtRepositoryConfig {
  std::size_t max_items_per_type = 8;
};

class CxtRepository {
 public:
  explicit CxtRepository(sim::Simulation& sim,
                         CxtRepositoryConfig config = {});

  /// Stores an item locally (evicting the oldest of its type when full).
  void Store(CxtItem item);

  /// Newest stored item of `type` that has not expired.
  [[nodiscard]] Result<CxtItem> Latest(const std::string& type) const;

  /// Up to `max_n` most recent unexpired items of `type`, newest first
  /// (0 = all).
  [[nodiscard]] std::vector<CxtItem> Recent(const std::string& type,
                                            std::size_t max_n = 0) const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  /// Drops expired items; returns how many were removed.
  std::size_t PurgeExpired();

  /// The reduceMemory action: shrink every ring to `per_type` entries.
  void Shrink(std::size_t per_type);

  /// Current per-type capacity (observable effect of reduceMemory).
  [[nodiscard]] std::size_t capacity_per_type() const noexcept {
    return config_.max_items_per_type;
  }

 private:
  sim::Simulation& sim_;
  CxtRepositoryConfig config_;
  std::unordered_map<std::string, std::deque<CxtItem>> rings_;
  std::size_t count_ = 0;
};

}  // namespace contory::core
