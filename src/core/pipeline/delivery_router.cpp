#include "core/pipeline/delivery_router.hpp"

#include <utility>

namespace contory::core {

void DeliveryRouter::OnFacadeDelivery(const std::string& query_id,
                                      const CxtItem& item) {
  QueryRecord* record = table_.Find(query_id);
  if (record == nullptr || record->client == nullptr) return;
  // Dedup by item id only when several mechanisms serve the query; a
  // single mechanism legitimately re-delivers an unchanged observation on
  // every periodic round.
  const bool multi_mechanism = record->assigned.size() > 1;
  const bool fresh = table_.RecordDelivery(*record, item.id);
  if (!fresh) {
    if (multi_mechanism) return;  // duplicate across mechanisms
    ++record->items_delivered;    // same observation, new periodic round
  }
  // Optional fusion aggregation for multi-mechanism queries.
  const auto agg = aggregators_.find(query_id);
  if (agg != aggregators_.end()) {
    auto fused = agg->second.Process(item);
    if (!fused.has_value()) return;
    repository_.Store(*fused);
    Route(*record, *fused);
    return;
  }
  repository_.Store(item);
  Route(*record, item);
}

void DeliveryRouter::DeliverStale(QueryRecord& record, CxtItem item) {
  item.metadata.staleness_seconds =
      ToSeconds(sim_.Now() - item.timestamp);
  ++record.items_delivered;
  Route(record, item);
}

void DeliveryRouter::Route(QueryRecord& record, const CxtItem& item) {
  Client* client = record.client;
  ClientQueue& queue = queues_[client];
  queue.items.push_back(Pending{record.query.id, item});
  if (queue.draining) return;  // the outer drain hands it over in order
  queue.draining = true;
  while (!queue.items.empty()) {
    Pending next = std::move(queue.items.front());
    queue.items.pop_front();
    ++items_routed_;
    client->ReceiveCxtItem(next.item);
  }
  queue.draining = false;
}

Status DeliveryRouter::EnableFusion(const std::string& query_id,
                                    AggregatorConfig config) {
  if (table_.Find(query_id) == nullptr) {
    return NotFound("no active query '" + query_id + "'");
  }
  aggregators_.erase(query_id);
  aggregators_.emplace(std::piecewise_construct,
                       std::forward_as_tuple(query_id),
                       std::forward_as_tuple(sim_, config));
  return Status::Ok();
}

void DeliveryRouter::OnQueryFinished(const std::string& query_id) {
  aggregators_.erase(query_id);
}

void DeliveryRouter::OnQueryCancelled(const std::string& query_id) {
  aggregators_.erase(query_id);
  for (auto& [client, queue] : queues_) {
    std::erase_if(queue.items, [&](const Pending& p) {
      return p.query_id == query_id;
    });
  }
}

}  // namespace contory::core
