#include "core/pipeline/delivery_router.hpp"

#include <utility>

#include "obs/observability.hpp"

namespace contory::core {
namespace {

/// Cached per-mechanism delivery counter — one delivery per item makes
/// this the densest hook; handles are stable across Reset().
obs::Counter& DeliveredCounter(query::SourceSel kind) {
  static obs::Counter* by_kind[4] = {};
  auto& slot = by_kind[static_cast<std::size_t>(kind)];
  if (slot == nullptr) {
    slot = &obs::Observability::metrics().GetCounter(
        "items_delivered_total",
        {{"mechanism", query::SourceSelName(kind)}});
  }
  return *slot;
}

/// Delivery bookkeeping fired just before an item is handed to the
/// client queue: per-mechanism counters, span item counts, and the
/// query's time-to-first-item (the paper's getCxtItem latency, measured
/// from submission to the first context item).
void NoteDelivered(QueryRecord& record, query::SourceSel mechanism,
                   std::uint64_t items_before, SimTime now) {
  auto& metrics = obs::Observability::metrics();
  const char* mech = query::SourceSelName(mechanism);
  DeliveredCounter(mechanism).Inc();
  auto& tracer = obs::Observability::tracer();
  tracer.AddItems(record.obs.root);
  tracer.AddItems(EnsureProvisionSpan(record, mechanism));
  if (items_before == 0) {
    metrics
        .GetHistogram("first_delivery_latency_ms", {{"mechanism", mech}})
        .Observe(ToMillis(now - record.submitted));
  }
}

}  // namespace

void DeliveryRouter::OnFacadeDelivery(const std::string& query_id,
                                      const CxtItem& item,
                                      query::SourceSel mechanism) {
  QueryRecord* record = table_.Find(query_id);
  if (record == nullptr || record->client == nullptr) return;
  const std::uint64_t items_before = record->items_delivered;
  // Dedup by item id only when several mechanisms serve the query; a
  // single mechanism legitimately re-delivers an unchanged observation on
  // every periodic round.
  const bool multi_mechanism = record->assigned.size() > 1;
  const bool fresh = table_.RecordDelivery(*record, item.id);
  if (!fresh) {
    if (multi_mechanism) return;  // duplicate across mechanisms
    ++record->items_delivered;    // same observation, new periodic round
  }
  // Optional fusion aggregation for multi-mechanism queries.
  const auto agg = aggregators_.find(query_id);
  if (agg != aggregators_.end()) {
    auto fused = agg->second.Process(item);
    if (!fused.has_value()) return;
    repository_.Store(*fused);
    // Hooks fire before Route(): a client cancelling from inside
    // ReceiveCxtItem erases the record, so it must not be touched after.
    COBS(NoteDelivered(*record, mechanism, items_before, sim_.Now()));
    Route(*record, *fused);
    return;
  }
  repository_.Store(item);
  COBS(NoteDelivered(*record, mechanism, items_before, sim_.Now()));
  Route(*record, item);
}

void DeliveryRouter::DeliverStale(QueryRecord& record, CxtItem item) {
  item.metadata.staleness_seconds =
      ToSeconds(sim_.Now() - item.timestamp);
  ++record.items_delivered;
  COBS({
    obs::Observability::metrics()
        .GetCounter("degraded_deliveries_total")
        .Inc();
    auto& tracer = obs::Observability::tracer();
    tracer.AddItems(record.obs.root);
    tracer.AddItems(record.obs.degraded);
  });
  Route(record, item);
}

void DeliveryRouter::Route(QueryRecord& record, const CxtItem& item) {
  Client* client = record.client;
  ClientQueue& queue = queues_[client];
  queue.items.push_back(Pending{record.query.id, item});
  if (queue.draining) return;  // the outer drain hands it over in order
  queue.draining = true;
  // Hand over everything queued in one ReceiveCxtItems call per round:
  // one virtual dispatch per drain, not per item. Nested deliveries
  // (a client submitting from inside the callback) land in queue.items
  // and are picked up by the next round, preserving order; a nested
  // cancel purges queued items but never the batch already handed over.
  std::vector<CxtItem> batch;
  while (!queue.items.empty()) {
    batch.clear();
    batch.reserve(queue.items.size());
    for (Pending& pending : queue.items) {
      batch.push_back(std::move(pending.item));
    }
    queue.items.clear();
    items_routed_ += batch.size();
    client->ReceiveCxtItems(batch);
  }
  queue.draining = false;
}

Status DeliveryRouter::EnableFusion(const std::string& query_id,
                                    AggregatorConfig config) {
  if (table_.Find(query_id) == nullptr) {
    return NotFound("no active query '" + query_id + "'");
  }
  aggregators_.erase(query_id);
  aggregators_.emplace(std::piecewise_construct,
                       std::forward_as_tuple(query_id),
                       std::forward_as_tuple(sim_, config));
  return Status::Ok();
}

void DeliveryRouter::OnQueryFinished(const std::string& query_id) {
  aggregators_.erase(query_id);
}

void DeliveryRouter::OnQueryCancelled(const std::string& query_id) {
  aggregators_.erase(query_id);
  for (auto& [client, queue] : queues_) {
    std::erase_if(queue.items, [&](const Pending& p) {
      return p.query_id == query_id;
    });
  }
}

}  // namespace contory::core
