#include "core/pipeline/sharded_query_table.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "obs/observability.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "querytable";

/// Cached registry handles (stable across Reset(); see MetricsRegistry).
obs::Gauge& LiveGauge() {
  static obs::Gauge& g =
      obs::Observability::metrics().GetGauge("queries_live");
  return g;
}

obs::Counter& CompletedCounter(QueryState from) {
  static obs::Counter* by_state[5] = {};
  auto& slot = by_state[static_cast<std::size_t>(from)];
  if (slot == nullptr) {
    slot = &obs::Observability::metrics().GetCounter(
        "queries_completed_total", {{"state", QueryStateName(from)}});
  }
  return *slot;
}

[[nodiscard]] std::size_t RoundUpPow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryIdInterner

QueryIdInterner::InternResult QueryIdInterner::Intern(
    const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = ids_.try_emplace(name, next_);
  if (!inserted) return {it->second, false};
  const QueryId id = next_++;
  const std::size_t offset = static_cast<std::size_t>(id - base_);
  if (offset / kChunkSlots >= chunks_.size()) {
    if (!spares_.empty()) {
      chunks_.push_back(std::move(spares_.back()));
      spares_.pop_back();
    } else {
      chunks_.push_back(std::make_unique<Chunk>());
    }
  }
  *SlotFor(id) = name;
  return {id, true};
}

QueryId QueryIdInterner::Lookup(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidQueryId : it->second;
}

std::string QueryIdInterner::Name(QueryId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string* slot = SlotFor(id);
  return slot == nullptr ? std::string{} : *slot;
}

void QueryIdInterner::Release(QueryId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string* slot = SlotFor(id);
  if (slot == nullptr || slot->empty()) return;
  ids_.erase(*slot);
  slot->clear();
  Chunk& chunk = *chunks_[static_cast<std::size_t>(id - base_) / kChunkSlots];
  ++chunk.released;
  // Recycle fully-released front chunks; the tail chunk is still filling
  // (ids below next_ may land in it), so it always stays.
  while (chunks_.size() > 1 && chunks_.front()->released == kChunkSlots) {
    chunks_.front()->released = 0;
    if (spares_.size() < 2) spares_.push_back(std::move(chunks_.front()));
    chunks_.pop_front();
    base_ += kChunkSlots;
  }
}

std::size_t QueryIdInterner::live() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ids_.size();
}

std::uint64_t QueryIdInterner::total_interned() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_ - 1;
}

std::string* QueryIdInterner::SlotFor(QueryId id) {
  if (id < base_ || id >= next_) return nullptr;
  const std::size_t offset = static_cast<std::size_t>(id - base_);
  return &chunks_[offset / kChunkSlots]->names[offset % kChunkSlots];
}

const std::string* QueryIdInterner::SlotFor(QueryId id) const {
  return const_cast<QueryIdInterner*>(this)->SlotFor(id);
}

// ---------------------------------------------------------------------------
// ShardedQueryTable

std::uint64_t EnsureProvisionSpan(QueryRecord& record,
                                  query::SourceSel kind) {
  const auto i = static_cast<std::size_t>(kind);
  QueryRecord::ObsSpans& spans = record.obs;
  if (spans.provision[i] == 0 && spans.provision_pending[i]) {
    spans.provision_pending[i] = false;
    spans.provision[i] = obs::Observability::tracer().BeginStageAt(
        spans.root, "provision", query::SourceSelName(kind),
        spans.provision_start[i], spans.provision_energy0[i]);
  }
  return spans.provision[i];
}

const char* QueryStateName(QueryState state) noexcept {
  switch (state) {
    case QueryState::kAdmitted: return "ADMITTED";
    case QueryState::kActive: return "ACTIVE";
    case QueryState::kFailingOver: return "FAILING_OVER";
    case QueryState::kDegraded: return "DEGRADED";
    case QueryState::kDone: return "DONE";
  }
  return "?";
}

ShardedQueryTable::ShardedQueryTable(sim::Simulation& sim,
                                     ShardedQueryTableOptions options)
    : sim_(sim), completion_cap_(options.completion_log_capacity) {
  const std::size_t n = RoundUpPow2(std::max<std::size_t>(options.shards, 1));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = n - 1;
}

ShardedQueryTable::~ShardedQueryTable() {
  COBS({
    const SimTime now = sim_.Now();
    for (auto& shard : shards_) {
      for (auto& [qid, record] : shard->records) {
        CloseSpans(record, now, "torn-down", "torn-down");
      }
    }
  });
}

void ShardedQueryTable::CloseSpans(QueryRecord& record, SimTime now,
                                   const char* how,
                                   const char* root_status) {
  auto& tracer = obs::Observability::tracer();
  QueryRecord::ObsSpans& spans = record.obs;
  // A deferred root must exist before its armed children can attach.
  EnsureRootSpan(record);
  for (std::size_t k = 0; k < 4; ++k) {
    const std::uint64_t sid =
        EnsureProvisionSpan(record, static_cast<query::SourceSel>(k));
    if (sid != 0) tracer.EndStage(sid, now, how);
    spans.provision[k] = 0;
  }
  if (spans.failover != 0) {
    tracer.EndStage(spans.failover, now, how);
    spans.failover = 0;
  }
  if (spans.degraded != 0) {
    tracer.EndStage(spans.degraded, now, how);
    spans.degraded = 0;
  }
  if (spans.root != 0) {
    tracer.EndQuery(spans.root, now, root_status);
    spans.root = 0;
    LiveGauge().Add(-1.0);
  }
  if (record.state == QueryState::kDegraded) {
    obs::Observability::metrics().GetGauge("queries_degraded").Add(-1.0);
  }
}

std::uint64_t ShardedQueryTable::EnsureRootSpan(QueryRecord& record) {
  QueryRecord::ObsSpans& spans = record.obs;
  if (spans.root == 0 && spans.root_pending) {
    spans.root_pending = false;
    spans.root = obs::Observability::tracer().BeginQueryAt(
        record.query.id, spans.root_start, spans.root_energy0,
        energy_probe_);
  }
  return spans.root;
}

Result<QueryId> ShardedQueryTable::Admit(query::CxtQuery query,
                                         Client& client,
                                         const AdmitOptions& options) {
  if (query.id.empty()) {
    return InvalidArgument("query must have an id before registration");
  }
  const auto [qid, created] = interner_.Intern(query.id);
  if (!created) {
    return AlreadyExists("query '" + query.id + "' already active");
  }
  QueryRecord record;
  record.client = &client;
  record.qid = qid;
  record.state = QueryState::kAdmitted;
  if (options.defer_obs) {
    record.submitted = options.now;
    if (COBS_ON()) {
      // Worker-mode admission: the tracer is simulation-thread-owned, so
      // arm the root span with the batch's time/energy snapshot and let
      // EnsureRootSpan materialize it on the simulation thread. The live
      // gauge is an atomic and can move here.
      record.obs.root_pending = true;
      record.obs.root_start = options.now;
      record.obs.root_energy0 = options.energy_now_j;
      LiveGauge().Add(1.0);
    }
  } else {
    record.submitted = sim_.Now();
    COBS({
      record.obs.root = obs::Observability::tracer().BeginQuery(
          query.id, record.submitted, energy_probe_);
      LiveGauge().Add(1.0);
    });
  }
  record.query = std::move(query);
  Shard& shard = ShardFor(qid);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.records.emplace(qid, std::move(record));
  }
  live_.fetch_add(1, std::memory_order_relaxed);
  total_admitted_.fetch_add(1, std::memory_order_relaxed);
  return qid;
}

QueryRecord* ShardedQueryTable::FindById(QueryId qid) {
  if (qid == kInvalidQueryId) return nullptr;
  Shard& shard = ShardFor(qid);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.records.find(qid);
  return it == shard.records.end() ? nullptr : &it->second;
}

const QueryRecord* ShardedQueryTable::FindById(QueryId qid) const {
  return const_cast<ShardedQueryTable*>(this)->FindById(qid);
}

QueryRecord* ShardedQueryTable::Find(const std::string& id) {
  return FindById(interner_.Lookup(id));
}

const QueryRecord* ShardedQueryTable::Find(const std::string& id) const {
  return const_cast<ShardedQueryTable*>(this)->Find(id);
}

bool ShardedQueryTable::ValidEdge(QueryState from, QueryState to) noexcept {
  if (from == QueryState::kDone) return false;  // terminal
  switch (to) {
    case QueryState::kAdmitted:
      return false;  // admission happens once, via Admit()
    case QueryState::kActive:
      // Assignment, failover success, or degraded recovery.
      return from == QueryState::kAdmitted ||
             from == QueryState::kFailingOver ||
             from == QueryState::kDegraded;
    case QueryState::kFailingOver:
      return from == QueryState::kActive;
    case QueryState::kDegraded:
      // Failover exhaustion, or the admission-time stale fast path
      // (OverloadGovernor shed with a warm repository).
      return from == QueryState::kFailingOver ||
             from == QueryState::kAdmitted;
    case QueryState::kDone:
      return true;  // any live state may finish (cancel, expiry, error)
  }
  return false;
}

bool ShardedQueryTable::Transition(QueryRecord& record, QueryState to) {
  if (record.state == to) return true;  // idempotent self-edge
  if (!ValidEdge(record.state, to)) {
    const auto refused =
        invalid_transitions_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (refused == 1) {
      CLOG_WARN(kModule,
                "first refused state-machine edge observed — a pipeline "
                "stage is driving the lifecycle out of order");
    }
    COBS(obs::Observability::metrics()
             .GetCounter("query_invalid_transitions_total")
             .Inc());
    CLOG_WARN(kModule, "query %s: refused %s -> %s",
              record.query.id.c_str(), QueryStateName(record.state),
              QueryStateName(to));
    return false;
  }
  record.state = to;
  return true;
}

void ShardedQueryTable::Finish(const std::string& id) {
  FinishById(interner_.Lookup(id));
}

void ShardedQueryTable::FinishById(QueryId qid) {
  if (qid == kInvalidQueryId) return;
  Shard& shard = ShardFor(qid);
  // Extract under the lock; span/log work happens outside it (simulation
  // thread only — Finish never races another mutation of this record).
  QueryRecord record;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.records.find(qid);
    if (it == shard.records.end()) return;
    record = std::move(it->second);
    shard.records.erase(it);
  }
  const QueryState from = record.state;
  const SimTime now = sim_.Now();
  COBS({
    // Single close point for the whole span tree: any stage span still
    // open at the terminal transition is force-closed here, then the
    // root closes exactly once with the state the query finished from.
    CloseSpans(record, now, "closed-at-finish", QueryStateName(from));
    CompletedCounter(from).Inc();
  });
  interner_.Release(qid);
  live_.fetch_sub(1, std::memory_order_relaxed);
  total_completed_.fetch_add(1, std::memory_order_relaxed);
  completions_.push_back(Completion{std::move(record.query.id), from, now});
  if (completion_cap_ != 0) {
    while (completions_.size() > completion_cap_) {
      completions_.pop_front();
      ++completions_dropped_;
    }
    COBS({
      static obs::Gauge& dropped = obs::Observability::metrics().GetGauge(
          "completion_log_dropped");
      dropped.Set(static_cast<double>(completions_dropped_));
    });
  }
}

bool ShardedQueryTable::RecordDelivery(QueryRecord& record,
                                       const std::string& item_id) {
  if (record.seen_items.contains(item_id)) return false;
  record.seen_items.insert(item_id);
  record.seen_order.push_back(item_id);
  while (record.seen_order.size() > kSeenCap) {
    record.seen_items.erase(record.seen_order.front());
    record.seen_order.erase(record.seen_order.begin());
  }
  ++record.items_delivered;
  return true;
}

void ShardedQueryTable::ForEachActive(
    const std::function<void(const QueryRecord&)>& visit) const {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [qid, record] : shard->records) visit(record);
  }
}

std::vector<std::string> ShardedQueryTable::ActiveIdsShard(
    std::size_t shard_index) const {
  std::vector<std::string> ids;
  if (shard_index >= shards_.size()) return ids;
  const Shard& shard = *shards_[shard_index];
  const std::lock_guard<std::mutex> lock(shard.mu);
  ids.reserve(shard.records.size());
  for (const auto& [qid, record] : shard.records) {
    ids.push_back(record.query.id);
  }
  return ids;
}

std::vector<std::string> ShardedQueryTable::ActiveIds() const {
  std::vector<std::string> ids;
  ids.reserve(active_count());
  ForEachActive(
      [&ids](const QueryRecord& record) { ids.push_back(record.query.id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace contory::core
