// FailoverCoordinator (pipeline stage 3½: what happens when stage 3
// fails).
//
// Owns everything that reacts to a mechanism dying under an active
// query: re-planning against the StrategyPlanner's preference order
// ("if a BT-GPS device suddenly disconnects, the location provisioning
// task can be moved from a LocalLocationProvider ... to an
// AdHocLocationProvider"), the switch-back recovery probes (the Fig. 5
// cycle), and graceful degradation to stale repository data when nothing
// is left. All lifecycle effects go through the QueryTable's state
// machine: ACTIVE -> FAILING_OVER -> ACTIVE | DEGRADED -> ... -> DONE.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/pipeline/delivery_router.hpp"
#include "core/pipeline/sharded_query_table.hpp"
#include "core/pipeline/strategy_planner.hpp"
#include "core/references/bt_reference.hpp"
#include "core/references/internal_reference.hpp"
#include "core/repository.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

/// Log entry for one provisioning switch: (time, query id, from, to).
struct SwitchEvent {
  SimTime at;
  std::string query_id;
  query::SourceSel from;
  query::SourceSel to;
};

struct FailoverConfig {
  /// Recovery-probe interval after a failover (Fig. 5: how soon the
  /// factory notices the GPS is back).
  SimDuration recovery_probe_period = std::chrono::seconds{30};
  /// When failover has nowhere left to go, answer from the local
  /// repository with explicit staleness metadata instead of erroring.
  bool enable_degraded_mode = true;
  /// Delivery period while degraded; zero means the query's EVERY (or
  /// 5 s when the query names none).
  SimDuration degraded_poll_period = SimDuration::zero();
};

class FailoverCoordinator {
 public:
  /// Facade operations the coordinator drives but the composition root
  /// owns (provider construction policy lives with the factory).
  struct Hooks {
    /// Submits `record`'s query to the facade of `kind`; records the
    /// assignment on success.
    std::function<Status(QueryRecord&, query::SourceSel)> assign;
    /// Cancels one original query on the facade of `kind`.
    std::function<void(const std::string&, query::SourceSel)> cancel;
  };

  FailoverCoordinator(sim::Simulation& sim, FailoverConfig config,
                      QueryTable& table, StrategyPlanner& planner,
                      CxtRepository& repository, DeliveryRouter& router,
                      const InternalReference& internal_ref,
                      BTReference& bt_ref, Hooks hooks);

  /// A facade finished one original query: duration complete (Ok) or a
  /// transport failure that triggers failover / degradation.
  void OnFacadeFinished(query::SourceSel kind, const std::string& query_id,
                        const Status& status);

  /// Cancel path: forget per-query probes and degraded tasks without
  /// logging a completion (the caller finishes the record).
  void DropQuery(const std::string& query_id);

  /// Admission-time stale fast path (OverloadGovernor): moves a freshly
  /// ADMITTED record straight into degraded mode — one stale answer and
  /// done for on-demand queries, degraded polling plus recovery probes
  /// for the rest. Returns false when the repository has nothing left
  /// to serve (the caller falls back to the shed refusal). Requires
  /// degraded mode to be enabled; the record's root span must already
  /// be materialized.
  bool DegradeAtAdmission(QueryRecord& record, const Status& cause);

  [[nodiscard]] const std::vector<SwitchEvent>& switch_log() const noexcept {
    return switch_log_;
  }
  /// Stale items handed out by degraded mode so far.
  [[nodiscard]] std::uint64_t degraded_deliveries() const noexcept {
    return degraded_deliveries_;
  }

 private:
  void TryFailover(QueryRecord& record, query::SourceSel failed_kind,
                   const Status& status);
  void StartRecoveryProbe(const std::string& query_id);
  void ProbeRecovery(const std::string& query_id);
  /// Cancels every assigned facade and re-assigns the preferred one;
  /// shared by both recovery probes. Returns true on success.
  bool SwitchBackToPreferred(QueryRecord& record);

  /// Degraded mode: serve stale repository data when every mechanism is
  /// down. Returns false when there is nothing cached to serve (the
  /// caller falls back to the hard error path).
  bool EnterDegradedMode(QueryRecord& record, const Status& cause);
  void DeliverDegraded(const std::string& query_id);
  void ProbeDegradedRecovery(const std::string& query_id);

  /// Normal terminal path: tears down probes/tasks, releases router
  /// state, and logs the completion in the table.
  void FinishQuery(const std::string& query_id);

  sim::Simulation& sim_;
  FailoverConfig config_;
  QueryTable& table_;
  StrategyPlanner& planner_;
  CxtRepository& repository_;
  DeliveryRouter& router_;
  const InternalReference& internal_ref_;
  BTReference& bt_ref_;
  Hooks hooks_;

  std::map<std::string, std::unique_ptr<sim::PeriodicTask>> recovery_probes_;
  std::map<std::string, std::unique_ptr<sim::PeriodicTask>> degraded_tasks_;
  std::vector<SwitchEvent> switch_log_;
  std::uint64_t degraded_deliveries_ = 0;
};

}  // namespace contory::core
