// OverloadGovernor (pipeline stage 0: admission overload protection).
//
// The paper's contextRules (reducePower/reduceMemory/reduceLoad, Sec. 5)
// are per-device hints; at submit-storm scale the factory needs a real
// admission gate in front of pipeline stage 1. The governor combines
// three mechanisms, all deterministic on the simulation clock:
//
//   1. Per-client token buckets. Each client refills at a configured
//      rate (tokens are sim-time deltas times rate, so identical
//      schedules make identical decisions under any seed) and every
//      submission spends one token. An empty bucket refuses the query
//      with a typed OVERLOADED status carrying a retry-after hint. One
//      noisy client drains only its own bucket.
//
//   2. Priority-class load shedding. Queries carry a 3-level PRIORITY
//      class (interactive/standard/background). When active-query
//      occupancy crosses the high watermark, background admissions
//      shed; above the standard watermark, standard sheds too.
//      Interactive traffic always admits. Shedding disengages with
//      hysteresis (below the low watermark) so occupancy noise around
//      the threshold cannot flap the gate.
//
//   3. The reduceLoad context rule engages the same shedding path:
//      while active it sheds background admissions even below the
//      watermarks (on top of the existing provider cap the
//      PolicyEnforcer applies to already-running queries).
//
// A shed query whose SELECT type has a fresh-enough repository entry is
// not refused: the governor downgrades the decision to kDegrade and the
// factory routes it through the degraded-mode delivery machinery
// (stale-answer-first fast path, FailoverCoordinator seam).
//
// Threading contract: Decide() mutates bucket and hysteresis state and
// reads the (unsynchronized) repository, so it runs on the simulation
// thread only. Worker-mode batches pre-gate every query in submission
// order before fanning out — the same trick the executor plays with id
// assignment — so token accounting and shed decisions are identical to
// the deterministic path no matter how admission is threaded.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <unordered_map>

#include "common/status.hpp"
#include "common/time.hpp"
#include "core/query/query.hpp"
#include "core/repository.hpp"
#include "core/rules.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class Client;

struct OverloadGovernorConfig {
  /// Token-bucket refill rate per client (admissions/second of sim
  /// time); <= 0 disables rate limiting.
  double admit_rate_per_s = 0.0;
  /// Bucket capacity (burst); <= 0 means equal to admit_rate_per_s.
  double admit_burst = 0.0;
  /// Active-query occupancy at which background admissions shed;
  /// 0 disables watermark shedding.
  std::size_t shed_high_watermark = 0;
  /// Occupancy at which standard admissions shed too; 0 = 2x high.
  std::size_t shed_standard_watermark = 0;
  /// Hysteresis: shedding fully disengages below this; 0 = high / 2.
  std::size_t shed_low_watermark = 0;
  /// Retry-after hint attached to watermark-shed refusals.
  SimDuration shed_retry_hint = std::chrono::seconds{1};
  /// Serve a stale repository answer (degraded-mode machinery) instead
  /// of refusing, when the cached entry is fresh enough.
  bool stale_fast_path = true;
  /// Maximum age a repository entry may have to satisfy a shed query;
  /// a query's own FRESHNESS clause tightens this further.
  SimDuration stale_answer_max_age = std::chrono::seconds{30};
};

/// What the governor is currently shedding (hysteresis state).
enum class ShedLevel : std::uint8_t {
  kNone = 0,
  kBackground = 1,  // background admissions shed
  kStandard = 2,    // background + standard shed
};

[[nodiscard]] const char* ShedLevelName(ShedLevel level) noexcept;

class OverloadGovernor {
 public:
  struct Decision {
    enum class Outcome : std::uint8_t {
      kAdmit,    // pass to stage 1
      kShed,     // refuse with `status` (kOverloaded, retry-after hint)
      kDegrade,  // admit, skip planning, serve stale repository data
    };
    Outcome outcome = Outcome::kAdmit;
    /// The shed cause for kShed/kDegrade; OK for kAdmit.
    Status status;
    query::QueryPriority cls = query::QueryPriority::kStandard;
    /// True when the per-client token bucket refused the query.
    bool rate_limited = false;
    /// Root-span annotation for admitted/degraded records (static
    /// string; nullptr = nothing to note).
    const char* note = nullptr;
  };

  OverloadGovernor(sim::Simulation& sim, const CxtRepository& repository,
                   OverloadGovernorConfig config);

  /// Gate for one submission. Charges `client`'s token bucket, updates
  /// the shed level from `occupancy` (normally the table's
  /// active_count(); batch pre-gating passes a projected value) and
  /// returns what the admission pipeline should do with the query.
  /// Simulation thread only.
  Decision Decide(const query::CxtQuery& query, const Client& client,
                  const std::set<RuleAction>& active_actions,
                  std::size_t occupancy);

  /// True when any gate can ever refuse (rate limiting or watermark
  /// shedding configured, or reduceLoad currently active).
  [[nodiscard]] bool Armed(
      const std::set<RuleAction>& active_actions) const noexcept {
    return config_.admit_rate_per_s > 0.0 || high_wm_ != 0 ||
           active_actions.contains(RuleAction::kReduceLoad);
  }

  [[nodiscard]] ShedLevel level() const noexcept { return level_; }
  /// Tokens currently in `client`'s bucket (full burst when the client
  /// has never submitted). Diagnostics / tests.
  [[nodiscard]] double TokensFor(const Client& client) const;

  /// Parses the "retry after <seconds>s" hint out of a kOverloaded
  /// status message; negative when absent.
  [[nodiscard]] static double ParseRetryAfterSeconds(
      const std::string& message);

 private:
  struct Bucket {
    double tokens = 0.0;
    SimTime last{};
    obs::Gauge* gauge = nullptr;  // overload_bucket_tokens{client="cN"}
  };

  [[nodiscard]] double burst() const noexcept {
    return config_.admit_burst > 0.0 ? config_.admit_burst
                                     : config_.admit_rate_per_s;
  }
  /// Refills and returns the bucket for `client`, creating it at full
  /// burst on first sight.
  Bucket& BucketFor(const Client& client, SimTime now);
  /// Advances the hysteresis state machine for this occupancy sample.
  void UpdateLevel(std::size_t occupancy);
  /// True when a repository entry can satisfy a shed `query` stale.
  [[nodiscard]] bool StaleEligible(const query::CxtQuery& query,
                                   SimTime now) const;

  sim::Simulation& sim_;
  const CxtRepository& repository_;
  OverloadGovernorConfig config_;
  std::size_t high_wm_ = 0;
  std::size_t standard_wm_ = 0;
  std::size_t low_wm_ = 0;
  ShedLevel level_ = ShedLevel::kNone;
  std::unordered_map<const Client*, Bucket> buckets_;
};

}  // namespace contory::core
