// ShardedQueryTable: the single source of truth for query lifecycle
// state, partitioned for scale.
//
// The paper's QueryManager (Sec. 4.3) "is responsible for maintaining an
// updated list of all active queries". At production scale that
// bookkeeping must not be duplicated: facades, failover, degraded mode
// and delivery all used to keep fragments of per-query state. The table
// owns one lifecycle record per query and an explicit state machine
// every pipeline stage reads and writes through:
//
//        Admit           Assign            mechanism fails
//   ---> ADMITTED ------> ACTIVE <------------> FAILING_OVER
//           |               ^  \                  |
//           |      recovery |   \ cancel/expiry   | nothing left,
//           |               v    v                v repository warm
//           |            DEGRADED ------------> DONE <---- (any state,
//           +--------------^                      ^         cancel)
//            shed at admission,                   |
//            stale fast path                      terminal; the record is
//            (OverloadGovernor)                   erased and a Completion
//                                                 is logged exactly once
//
// Invariant (tested): every admitted query reaches DONE exactly once, no
// matter how cancel, failover, degraded delivery and policy enforcement
// interleave — and, since sharding, no matter which shard a record
// lives on or which thread admitted it.
//
// Scale structure (the 1M-concurrent-query redesign):
//
//   - Query ids are interned to dense u64 handles (QueryIdInterner, a
//     chunked name store in the mold of the tracer's open-span window).
//     Hot-path lookups hash one integer instead of a heap string; the
//     public string-keyed API survives as a boundary convenience.
//   - Records are partitioned across N power-of-two shards by id, each
//     shard a u64-keyed map behind its own mutex. The mutexes guard map
//     *structure* only (insert/erase/rehash); a record is always owned
//     by exactly one pipeline stage at a time, so record mutation needs
//     no lock. In deterministic mode the locks are uncontended and cost
//     nanoseconds; in worker mode they let N admission workers insert
//     concurrently while the simulation thread drains assignments.
//   - Aggregate counters (live/admitted/completed/invalid transitions)
//     are relaxed atomics — O(1) to read, coherent across shards.
//   - The terminal Completion log is a bounded ring (oldest dropped,
//     drops counted) so a million finishes cannot grow memory without
//     bound; tests that audit full lifecycle history opt into the
//     unbounded mode with SetCompletionLogCapacity(0).
//
// Threading contract: Admit() may be called from PipelineExecutor
// workers (with deferred obs, see AdmitOptions); every other mutating
// call — Transition, Finish, RecordDelivery — stays on the simulation
// thread. Completions and histograms are therefore not locked.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "core/client.hpp"
#include "core/query/query.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

/// Dense interned query id. 0 is never handed out and means "invalid".
using QueryId = std::uint64_t;
inline constexpr QueryId kInvalidQueryId = 0;

/// Interns query-id strings to dense sequential u64 handles and resolves
/// them back. Names live in fixed-size chunks (stable addresses, no
/// per-id allocation beyond the string itself); Release() clears a slot
/// and fully-released front chunks are recycled, so memory is bounded by
/// *concurrently live* ids plus one chunk, not by ids ever interned.
/// Thread-safe: one small mutex — interning happens once per admission
/// and resolution once per completion, both far off the per-item path.
class QueryIdInterner {
 public:
  struct InternResult {
    QueryId id = kInvalidQueryId;
    /// False when `name` was already interned (and not yet released).
    bool created = false;
  };

  /// Returns the id for `name`, interning it if new.
  InternResult Intern(const std::string& name);
  /// Id for `name`, or kInvalidQueryId when not currently interned.
  [[nodiscard]] QueryId Lookup(const std::string& name) const;
  /// Name for a live id; empty when unknown or already released.
  [[nodiscard]] std::string Name(QueryId id) const;
  /// Frees the slot; the name may be re-interned later (fresh id).
  void Release(QueryId id);

  [[nodiscard]] std::size_t live() const;
  [[nodiscard]] std::uint64_t total_interned() const;

 private:
  static constexpr std::size_t kChunkSlots = 1024;
  struct Chunk {
    std::array<std::string, kChunkSlots> names;
    std::size_t released = 0;
  };

  [[nodiscard]] std::string* SlotFor(QueryId id);
  [[nodiscard]] const std::string* SlotFor(QueryId id) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, QueryId> ids_;
  std::deque<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::unique_ptr<Chunk>> spares_;
  QueryId base_ = 1;  // id of chunks_[0].names[0]
  QueryId next_ = 1;
};

enum class QueryState : std::uint8_t {
  kAdmitted,     // registered; no facade assigned yet
  kActive,       // at least one facade provisions it
  kFailingOver,  // a mechanism failed; re-planning in progress
  kDegraded,     // served stale repository data; probing for recovery
  kDone,         // terminal; the record has been erased
};

[[nodiscard]] const char* QueryStateName(QueryState state) noexcept;

/// Data-driven provisioning strategy for one query, produced by the
/// StrategyPlanner at admission: which facades start immediately, and the
/// preference order failover walks when a mechanism dies.
struct ProvisioningPlan {
  /// Facade kinds assigned at submission (one for transparent queries,
  /// every listed source for explicit FROM clauses).
  std::vector<query::SourceSel> initial;
  /// Preference order consulted on failover and recovery; availability is
  /// re-checked against this order at switch time.
  std::vector<query::SourceSel> failover_order;
  /// The mechanism the planner preferred originally (switch-back target).
  query::SourceSel preferred = query::SourceSel::kAuto;
  /// True when the query's FROM clause was empty and the planner chose
  /// the mechanism transparently.
  bool transparent = false;
};

struct QueryRecord {
  query::CxtQuery query;
  Client* client = nullptr;
  /// Interned handle for query.id; set at admission, stable for life.
  QueryId qid = kInvalidQueryId;
  QueryState state = QueryState::kAdmitted;
  ProvisioningPlan plan;
  /// Facade kinds currently provisioning this query.
  std::set<query::SourceSel> assigned;
  /// Mechanisms that failed for this query (excluded from re-selection).
  std::set<query::SourceSel> failed;
  SimTime submitted{};
  std::uint64_t items_delivered = 0;
  /// Ids of items already delivered (cross-facade dedup), bounded.
  std::unordered_set<std::string> seen_items;
  std::vector<std::string> seen_order;

  /// Tracer span handles (0 = no span). Plain uint64 fields — the hot
  /// path must never do a string-keyed lookup to find its span. One
  /// provision slot per SourceSel mechanism (indexed by its enum value).
  struct ObsSpans {
    std::uint64_t root = 0;
    /// Deferred root-span open: worker-mode admission must not touch the
    /// (simulation-thread-owned) tracer, so it records the admission
    /// time and an energy sample here ("armed"); EnsureRootSpan()
    /// materializes the span on the simulation thread with these as its
    /// true open-time values.
    bool root_pending = false;
    SimTime root_start{};
    double root_energy0 = 0.0;
    std::uint64_t provision[4] = {0, 0, 0, 0};
    /// Deferred provision-span opens: facade assignment sits on the
    /// submit hot path, so it only records the window start and an
    /// energy sample here ("armed"); EnsureProvisionSpan() materializes
    /// the tracer span at the stage's first real event (delivery,
    /// failover, finish) with these as its true open-time values.
    SimTime provision_start[4] = {};
    double provision_energy0[4] = {0.0, 0.0, 0.0, 0.0};
    bool provision_pending[4] = {false, false, false, false};
    std::uint64_t failover = 0;
    std::uint64_t degraded = 0;
  };
  ObsSpans obs;

  [[nodiscard]] bool degraded() const noexcept {
    return state == QueryState::kDegraded;
  }
};

/// Returns the provision-span handle for `kind`, materializing a span
/// armed at facade assignment on first use. 0 when the mechanism never
/// had an assignment window or the root span is already closed. Callers
/// are expected to be inside a COBS block.
std::uint64_t EnsureProvisionSpan(QueryRecord& record, query::SourceSel kind);

struct ShardedQueryTableOptions {
  /// Shard count; rounded up to a power of two. Records stripe across
  /// shards by dense id, so sequential admissions spread perfectly.
  std::size_t shards = 16;
  /// Completion-log bound; oldest entries drop beyond it (drops are
  /// counted). 0 = unbounded (lifecycle-invariant tests opt in).
  std::size_t completion_log_capacity = 4096;
};

class ShardedQueryTable {
 public:
  /// One terminal transition, logged when a record reaches DONE.
  struct Completion {
    std::string id;
    /// The state the query was in when it finished (kActive for a normal
    /// duration expiry, kDegraded for a stale-served query, ...).
    QueryState from = QueryState::kAdmitted;
    SimTime at{};
  };

  explicit ShardedQueryTable(sim::Simulation& sim,
                             ShardedQueryTableOptions options = {});
  /// Force-closes the spans of any still-live record so the tracer never
  /// leaks open spans (and never calls an energy probe after teardown).
  ~ShardedQueryTable();

  ShardedQueryTable(const ShardedQueryTable&) = delete;
  ShardedQueryTable& operator=(const ShardedQueryTable&) = delete;

  /// Energy source for tracer spans: the owning device's cumulative
  /// energy ledger (Joules). Set once by the factory that owns this
  /// table; queries admitted while unset simply carry no energy.
  void SetEnergyProbe(obs::QueryTracer::EnergyProbe probe) {
    energy_probe_ = std::move(probe);
  }

  struct AdmitOptions {
    /// Worker-mode admission: arm the root span instead of opening it
    /// (the tracer is simulation-thread-owned) and stamp the record with
    /// the supplied time/energy snapshot instead of reading the sim.
    bool defer_obs = false;
    SimTime now{};
    double energy_now_j = 0.0;
  };

  /// Registers a submitted query in state ADMITTED; assigns nothing yet.
  /// Opens (or, deferred, arms) the query's root tracer span. Returns
  /// the interned dense id. Thread-safe when `options.defer_obs` is set.
  Result<QueryId> Admit(query::CxtQuery query, Client& client,
                        const AdmitOptions& options);
  Result<QueryId> Admit(query::CxtQuery query, Client& client) {
    return Admit(std::move(query), client, AdmitOptions());
  }

  [[nodiscard]] QueryRecord* Find(const std::string& id);
  [[nodiscard]] const QueryRecord* Find(const std::string& id) const;
  [[nodiscard]] QueryRecord* FindById(QueryId qid);
  [[nodiscard]] const QueryRecord* FindById(QueryId qid) const;

  /// Moves `record` along a legal (non-terminal) edge of the state
  /// machine. Illegal edges are refused (returns false) and counted —
  /// a refused transition is a pipeline bug, not a crash.
  bool Transition(QueryRecord& record, QueryState to);

  /// Terminal transition: logs a Completion exactly once and erases the
  /// record. Finishing an unknown id is a harmless no-op (cancel racing
  /// a duration expiry). Simulation thread only.
  void Finish(const std::string& id);
  void FinishById(QueryId qid);

  /// Records a delivery; returns false when `item_id` was already
  /// delivered for this query (duplicate across facades).
  bool RecordDelivery(QueryRecord& record, const std::string& item_id);

  /// Materializes a deferred (worker-admitted) root span; returns the
  /// handle, 0 when obs never armed one. Simulation thread only; callers
  /// are expected to be inside a COBS block.
  std::uint64_t EnsureRootSpan(QueryRecord& record);

  /// Live queries across all shards. O(1): relaxed aggregate counter.
  [[nodiscard]] std::size_t active_count() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Visits every live record without materializing id copies (the
  /// scale-friendly replacement for collecting ActiveIds at 1M live
  /// queries). Visit order is by shard, unordered within one; the
  /// callback must not admit or finish queries.
  void ForEachActive(
      const std::function<void(const QueryRecord&)>& visit) const;
  /// Live ids on one shard (diagnostics; unsorted).
  [[nodiscard]] std::vector<std::string> ActiveIdsShard(
      std::size_t shard) const;
  /// All live ids, sorted. Diagnostics only — allocates O(active_count);
  /// prefer ForEachActive on anything that could run at scale.
  [[nodiscard]] std::vector<std::string> ActiveIds() const;

  /// Terminal log, newest last, bounded by the completion-log capacity
  /// (lifecycle invariant tests run under the default capacity or opt
  /// into 0 = unbounded).
  [[nodiscard]] const std::deque<Completion>& completions() const noexcept {
    return completions_;
  }
  void ClearCompletions() { completions_.clear(); }
  /// 0 = unbounded. Takes effect from the next Finish.
  void SetCompletionLogCapacity(std::size_t capacity) {
    completion_cap_ = capacity;
  }
  /// Completions evicted from the bounded log (total_completed() still
  /// counts them).
  [[nodiscard]] std::uint64_t completions_dropped() const noexcept {
    return completions_dropped_;
  }
  /// Queries ever finished (== total_admitted - live, invariant-tested).
  [[nodiscard]] std::uint64_t total_completed() const noexcept {
    return total_completed_.load(std::memory_order_relaxed);
  }
  /// Refused state-machine edges observed (should stay zero).
  [[nodiscard]] std::uint64_t invalid_transitions() const noexcept {
    return invalid_transitions_.load(std::memory_order_relaxed);
  }
  /// Queries ever admitted (diagnostics; admitted == completed + live).
  [[nodiscard]] std::uint64_t total_admitted() const noexcept {
    return total_admitted_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] QueryIdInterner& interner() noexcept { return interner_; }

 private:
  static constexpr std::size_t kSeenCap = 128;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<QueryId, QueryRecord> records;
  };

  [[nodiscard]] static bool ValidEdge(QueryState from,
                                      QueryState to) noexcept;
  [[nodiscard]] Shard& ShardFor(QueryId qid) noexcept {
    return *shards_[qid & shard_mask_];
  }
  [[nodiscard]] const Shard& ShardFor(QueryId qid) const noexcept {
    return *shards_[qid & shard_mask_];
  }
  /// Closes every span of a record that is leaving the table.
  void CloseSpans(QueryRecord& record, SimTime now, const char* how,
                  const char* root_status);

  sim::Simulation& sim_;
  QueryIdInterner interner_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  std::atomic<std::size_t> live_{0};
  std::atomic<std::uint64_t> total_admitted_{0};
  std::atomic<std::uint64_t> total_completed_{0};
  std::atomic<std::uint64_t> invalid_transitions_{0};
  std::deque<Completion> completions_;
  std::size_t completion_cap_;
  std::uint64_t completions_dropped_ = 0;
  obs::QueryTracer::EnergyProbe energy_probe_;
};

/// The pipeline grew up around the unsharded QueryTable name; the
/// sharded table is a drop-in replacement for its whole API.
using QueryTable = ShardedQueryTable;

}  // namespace contory::core
