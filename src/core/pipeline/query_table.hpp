// QueryTable: the single source of truth for query lifecycle state.
//
// The paper's QueryManager (Sec. 4.3) "is responsible for maintaining an
// updated list of all active queries". At production scale that
// bookkeeping must not be duplicated: facades, failover, degraded mode
// and delivery all used to keep fragments of per-query state. The
// QueryTable owns one lifecycle record per query and an explicit state
// machine every pipeline stage reads and writes through:
//
//        Admit           Assign            mechanism fails
//   ---> ADMITTED ------> ACTIVE <------------> FAILING_OVER
//           |               ^  \                  |
//           |      recovery |   \ cancel/expiry   | nothing left,
//           |               v    v                v repository warm
//           |            DEGRADED ------------> DONE <---- (any state,
//           +---------------------------------->  ^         cancel)
//                no mechanism at admission        |
//                                                 terminal; the record is
//                                                 erased and a Completion
//                                                 is logged exactly once
//
// Invariant (tested): every admitted query reaches DONE exactly once, no
// matter how cancel, failover, degraded delivery and policy enforcement
// interleave.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "core/client.hpp"
#include "core/query/query.hpp"
#include "obs/tracer.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

enum class QueryState : std::uint8_t {
  kAdmitted,     // registered; no facade assigned yet
  kActive,       // at least one facade provisions it
  kFailingOver,  // a mechanism failed; re-planning in progress
  kDegraded,     // served stale repository data; probing for recovery
  kDone,         // terminal; the record has been erased
};

[[nodiscard]] const char* QueryStateName(QueryState state) noexcept;

/// Data-driven provisioning strategy for one query, produced by the
/// StrategyPlanner at admission: which facades start immediately, and the
/// preference order failover walks when a mechanism dies.
struct ProvisioningPlan {
  /// Facade kinds assigned at submission (one for transparent queries,
  /// every listed source for explicit FROM clauses).
  std::vector<query::SourceSel> initial;
  /// Preference order consulted on failover and recovery; availability is
  /// re-checked against this order at switch time.
  std::vector<query::SourceSel> failover_order;
  /// The mechanism the planner preferred originally (switch-back target).
  query::SourceSel preferred = query::SourceSel::kAuto;
  /// True when the query's FROM clause was empty and the planner chose
  /// the mechanism transparently.
  bool transparent = false;
};

struct QueryRecord {
  query::CxtQuery query;
  Client* client = nullptr;
  QueryState state = QueryState::kAdmitted;
  ProvisioningPlan plan;
  /// Facade kinds currently provisioning this query.
  std::set<query::SourceSel> assigned;
  /// Mechanisms that failed for this query (excluded from re-selection).
  std::set<query::SourceSel> failed;
  SimTime submitted{};
  std::uint64_t items_delivered = 0;
  /// Ids of items already delivered (cross-facade dedup), bounded.
  std::unordered_set<std::string> seen_items;
  std::vector<std::string> seen_order;

  /// Tracer span handles (0 = no span). Plain uint64 fields — the hot
  /// path must never do a string-keyed lookup to find its span. One
  /// provision slot per SourceSel mechanism (indexed by its enum value).
  struct ObsSpans {
    std::uint64_t root = 0;
    std::uint64_t provision[4] = {0, 0, 0, 0};
    /// Deferred provision-span opens: facade assignment sits on the
    /// submit hot path, so it only records the window start and an
    /// energy sample here ("armed"); EnsureProvisionSpan() materializes
    /// the tracer span at the stage's first real event (delivery,
    /// failover, finish) with these as its true open-time values.
    SimTime provision_start[4] = {};
    double provision_energy0[4] = {0.0, 0.0, 0.0, 0.0};
    bool provision_pending[4] = {false, false, false, false};
    std::uint64_t failover = 0;
    std::uint64_t degraded = 0;
  };
  ObsSpans obs;

  [[nodiscard]] bool degraded() const noexcept {
    return state == QueryState::kDegraded;
  }
};

/// Returns the provision-span handle for `kind`, materializing a span
/// armed at facade assignment on first use. 0 when the mechanism never
/// had an assignment window or the root span is already closed. Callers
/// are expected to be inside a COBS block.
std::uint64_t EnsureProvisionSpan(QueryRecord& record, query::SourceSel kind);

class QueryTable {
 public:
  /// One terminal transition, logged when a record reaches DONE.
  struct Completion {
    std::string id;
    /// The state the query was in when it finished (kActive for a normal
    /// duration expiry, kDegraded for a stale-served query, ...).
    QueryState from = QueryState::kAdmitted;
    SimTime at{};
  };

  explicit QueryTable(sim::Simulation& sim) : sim_(sim) {}
  /// Force-closes the spans of any still-live record so the tracer never
  /// leaks open spans (and never calls an energy probe after teardown).
  ~QueryTable();

  /// Energy source for tracer spans: the owning device's cumulative
  /// energy ledger (Joules). Set once by the factory that owns this
  /// table; queries admitted while unset simply carry no energy.
  void SetEnergyProbe(obs::QueryTracer::EnergyProbe probe) {
    energy_probe_ = std::move(probe);
  }

  /// Registers a submitted query in state ADMITTED; assigns nothing yet.
  /// Opens the query's root tracer span.
  Status Admit(query::CxtQuery query, Client& client);

  [[nodiscard]] QueryRecord* Find(const std::string& id);
  [[nodiscard]] const QueryRecord* Find(const std::string& id) const;

  /// Moves `record` along a legal (non-terminal) edge of the state
  /// machine. Illegal edges are refused (returns false) and counted —
  /// a refused transition is a pipeline bug, not a crash.
  bool Transition(QueryRecord& record, QueryState to);

  /// Terminal transition: logs a Completion exactly once and erases the
  /// record. Finishing an unknown id is a harmless no-op (cancel racing
  /// a duration expiry).
  void Finish(const std::string& id);

  /// Records a delivery; returns false when `item_id` was already
  /// delivered for this query (duplicate across facades).
  bool RecordDelivery(QueryRecord& record, const std::string& item_id);

  [[nodiscard]] std::size_t active_count() const noexcept {
    return records_.size();
  }
  [[nodiscard]] std::vector<std::string> ActiveIds() const;

  /// Terminal log, in completion order (lifecycle invariant tests).
  [[nodiscard]] const std::vector<Completion>& completions() const noexcept {
    return completions_;
  }
  void ClearCompletions() { completions_.clear(); }
  /// Refused state-machine edges observed (should stay zero).
  [[nodiscard]] std::uint64_t invalid_transitions() const noexcept {
    return invalid_transitions_;
  }
  /// Queries ever admitted (diagnostics; admitted == completed + live).
  [[nodiscard]] std::uint64_t total_admitted() const noexcept {
    return total_admitted_;
  }

 private:
  static constexpr std::size_t kSeenCap = 128;

  [[nodiscard]] static bool ValidEdge(QueryState from,
                                      QueryState to) noexcept;

  sim::Simulation& sim_;
  std::unordered_map<std::string, QueryRecord> records_;
  std::vector<Completion> completions_;
  std::uint64_t invalid_transitions_ = 0;
  std::uint64_t total_admitted_ = 0;
  obs::QueryTracer::EnergyProbe energy_probe_;
};

}  // namespace contory::core
