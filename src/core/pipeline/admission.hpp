// Admission (pipeline stage 1 of 4).
//
// Everything that can reject a query before any provisioning work
// happens: the OverloadGovernor gate (rate limiting + load shedding),
// structural validation, id assignment, AccessController screening of
// the FROM sources, and control-policy gates. A query that passes is
// registered in the QueryTable in state ADMITTED.
#pragma once

#include <set>

#include "common/status.hpp"
#include "core/access_controller.hpp"
#include "core/client.hpp"
#include "core/pipeline/overload_governor.hpp"
#include "core/pipeline/sharded_query_table.hpp"
#include "core/query/query.hpp"
#include "core/rules.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class AdmissionController {
 public:
  /// `governor` may be null (no overload protection; tests that build
  /// the stage in isolation).
  AdmissionController(sim::Simulation& sim, AccessController& access,
                      QueryTable& table,
                      OverloadGovernor* governor = nullptr)
      : sim_(sim), access_(access), table_(table), governor_(governor) {}

  /// Validates `query`, assigns an id when it has none, applies the
  /// overload, access-control and policy gates, and registers the
  /// lifecycle record. On error nothing is registered; on success the
  /// returned dense id (and `query.id`) name the ADMITTED record.
  ///
  /// The governor gate runs first. On the live path the decision is
  /// computed here; worker-mode batches pre-gate on the simulation
  /// thread (the governor is not thread-safe) and pass the decision in
  /// through `pregate`. A non-null `decision_out` receives whichever
  /// decision applied, so the caller can route kDegrade records to the
  /// stale fast path.
  ///
  /// Thread-safe when `table_options.defer_obs` is set AND `query.id` is
  /// already assigned AND the gate decision is pre-computed (the id
  /// generator, the clock and the governor live on the simulation
  /// thread; the PipelineExecutor pre-assigns all three before fanning
  /// out).
  Result<QueryId> Admit(query::CxtQuery& query, Client& client,
                        const std::set<RuleAction>& active_actions,
                        const QueryTable::AdmitOptions& table_options = {},
                        const OverloadGovernor::Decision* pregate = nullptr,
                        OverloadGovernor::Decision* decision_out = nullptr);

 private:
  Result<QueryId> DoAdmit(query::CxtQuery& query, Client& client,
                          const std::set<RuleAction>& active_actions,
                          const QueryTable::AdmitOptions& table_options,
                          const OverloadGovernor::Decision* pregate,
                          OverloadGovernor::Decision* decision_out);

  sim::Simulation& sim_;
  AccessController& access_;
  QueryTable& table_;
  OverloadGovernor* governor_;
};

}  // namespace contory::core
