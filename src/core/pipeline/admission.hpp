// Admission (pipeline stage 1 of 4).
//
// Everything that can reject a query before any provisioning work
// happens: structural validation, id assignment, AccessController
// screening of the FROM sources, and control-policy gates. A query that
// passes is registered in the QueryTable in state ADMITTED.
#pragma once

#include <set>

#include "common/status.hpp"
#include "core/access_controller.hpp"
#include "core/client.hpp"
#include "core/pipeline/query_table.hpp"
#include "core/query/query.hpp"
#include "core/rules.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class AdmissionController {
 public:
  AdmissionController(sim::Simulation& sim, AccessController& access,
                      QueryTable& table)
      : sim_(sim), access_(access), table_(table) {}

  /// Validates `query`, assigns an id when it has none, applies the
  /// access-control and policy gates, and registers the lifecycle record.
  /// On error nothing is registered; on success `query.id` names the
  /// ADMITTED record.
  Status Admit(query::CxtQuery& query, Client& client,
               const std::set<RuleAction>& active_actions);

 private:
  Status DoAdmit(query::CxtQuery& query, Client& client,
                 const std::set<RuleAction>& active_actions);

  sim::Simulation& sim_;
  AccessController& access_;
  QueryTable& table_;
};

}  // namespace contory::core
