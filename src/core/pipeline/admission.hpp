// Admission (pipeline stage 1 of 4).
//
// Everything that can reject a query before any provisioning work
// happens: structural validation, id assignment, AccessController
// screening of the FROM sources, and control-policy gates. A query that
// passes is registered in the QueryTable in state ADMITTED.
#pragma once

#include <set>

#include "common/status.hpp"
#include "core/access_controller.hpp"
#include "core/client.hpp"
#include "core/pipeline/sharded_query_table.hpp"
#include "core/query/query.hpp"
#include "core/rules.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class AdmissionController {
 public:
  AdmissionController(sim::Simulation& sim, AccessController& access,
                      QueryTable& table)
      : sim_(sim), access_(access), table_(table) {}

  /// Validates `query`, assigns an id when it has none, applies the
  /// access-control and policy gates, and registers the lifecycle record.
  /// On error nothing is registered; on success the returned dense id
  /// (and `query.id`) name the ADMITTED record.
  ///
  /// Thread-safe when `table_options.defer_obs` is set AND `query.id` is
  /// already assigned (the id generator and clock live on the simulation
  /// thread; the PipelineExecutor pre-assigns ids before fanning out).
  Result<QueryId> Admit(query::CxtQuery& query, Client& client,
                        const std::set<RuleAction>& active_actions,
                        const QueryTable::AdmitOptions& table_options = {});

 private:
  Result<QueryId> DoAdmit(query::CxtQuery& query, Client& client,
                          const std::set<RuleAction>& active_actions,
                          const QueryTable::AdmitOptions& table_options);

  sim::Simulation& sim_;
  AccessController& access_;
  QueryTable& table_;
};

}  // namespace contory::core
