// StrategyPlanner (pipeline stage 2 of 4).
//
// Turns a query's FROM clause — or its absence — into a data-driven
// ProvisioningPlan: which facades start now, and the preference order
// failover walks later. This is the paper's transparent source selection
// ("in resource-rich environments, powerful context infrastructures can
// provide applications with required context data ... Conversely, in
// resource-impoverished environments, devices can rely either on their
// own sensors ... or on neighboring devices") expressed as data instead
// of ad hoc branches in the factory.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/pipeline/sharded_query_table.hpp"
#include "core/query/query.hpp"
#include "core/references/bt_reference.hpp"
#include "core/references/cellular_reference.hpp"
#include "core/references/internal_reference.hpp"
#include "core/references/wifi_reference.hpp"
#include "core/rules.hpp"

namespace contory::core {

/// Read-only availability view the planner consults. Wired once by the
/// composition root; the pointed-to objects outlive the planner.
struct PlannerEnv {
  const InternalReference* internal = nullptr;
  const BTReference* bt = nullptr;
  const WiFiReference* wifi = nullptr;
  const CellularReference* cell = nullptr;
  const std::string* default_infra_address = nullptr;
  /// Control-policy actions active right now (reducePower demotes the
  /// 2G/3G mechanism below everything).
  const std::set<RuleAction>* active_actions = nullptr;
};

class StrategyPlanner {
 public:
  explicit StrategyPlanner(PlannerEnv env);

  /// Builds the provisioning plan for a freshly admitted query: the
  /// initial facade set (one transparently chosen mechanism, or every
  /// source the FROM clause lists) plus the failover preference order.
  [[nodiscard]] Result<ProvisioningPlan> Plan(const query::CxtQuery& q) const;

  /// One mechanism that can serve `q` right now, walking the preference
  /// order and skipping `excluded` kinds. Shared by admission-time
  /// transparent selection, failover re-planning, and recovery probes.
  [[nodiscard]] Result<query::SourceSel> SelectMechanism(
      const query::CxtQuery& q,
      const std::set<query::SourceSel>& excluded) const;

  /// Preference order: own sensors (cheapest), then the ad hoc network,
  /// then the infrastructure (the 14 J hammer).
  [[nodiscard]] const std::vector<query::SourceSel>& preference_order()
      const noexcept {
    return preference_order_;
  }

 private:
  [[nodiscard]] bool CanServe(query::SourceSel kind,
                              const query::CxtQuery& q) const;

  PlannerEnv env_;
  std::vector<query::SourceSel> preference_order_;
};

}  // namespace contory::core
