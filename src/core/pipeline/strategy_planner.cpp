#include "core/pipeline/strategy_planner.hpp"

#include <stdexcept>

#include "core/providers/adhoc_provider.hpp"
#include "core/providers/infra_provider.hpp"
#include "core/providers/local_provider.hpp"

namespace contory::core {

StrategyPlanner::StrategyPlanner(PlannerEnv env)
    : env_(env),
      preference_order_{query::SourceSel::kIntSensor,
                        query::SourceSel::kAdHocNetwork,
                        query::SourceSel::kExtInfra} {
  if (env_.internal == nullptr || env_.bt == nullptr ||
      env_.wifi == nullptr || env_.cell == nullptr ||
      env_.default_infra_address == nullptr ||
      env_.active_actions == nullptr) {
    throw std::invalid_argument("StrategyPlanner: incomplete environment");
  }
}

bool StrategyPlanner::CanServe(query::SourceSel kind,
                               const query::CxtQuery& q) const {
  switch (kind) {
    case query::SourceSel::kIntSensor:
      return LocalCxtProvider::CanServe(q, *env_.internal, *env_.bt);
    case query::SourceSel::kAdHocNetwork:
      return AdHocCxtProvider::CanServe(*env_.bt, *env_.wifi);
    case query::SourceSel::kExtInfra:
      if (env_.active_actions->contains(RuleAction::kReducePower)) {
        return false;
      }
      return InfraCxtProvider::CanServe(*env_.cell,
                                        *env_.default_infra_address);
    case query::SourceSel::kAuto:
      break;
  }
  return false;
}

Result<query::SourceSel> StrategyPlanner::SelectMechanism(
    const query::CxtQuery& q,
    const std::set<query::SourceSel>& excluded) const {
  for (const query::SourceSel kind : preference_order_) {
    if (excluded.contains(kind)) continue;
    if (CanServe(kind, q)) return kind;
  }
  return Unavailable("no provisioning mechanism can serve '" +
                     q.select_type + "'");
}

Result<ProvisioningPlan> StrategyPlanner::Plan(
    const query::CxtQuery& q) const {
  ProvisioningPlan plan;
  plan.failover_order = preference_order_;
  if (q.from.IsAuto()) {
    plan.transparent = true;
    const auto kind = SelectMechanism(q, {});
    if (!kind.ok()) return kind.status();
    plan.initial.push_back(*kind);
    plan.preferred = *kind;
    return plan;
  }
  // Explicit FROM clause: every listed source gets a facade; an auto
  // source inside a FROM list means "the infrastructure decides", which
  // resolves to extInfra as in the prototype.
  std::set<query::SourceSel> kinds;
  for (const auto& src : q.from.sources) {
    kinds.insert(src.kind == query::SourceSel::kAuto
                     ? query::SourceSel::kExtInfra
                     : src.kind);
  }
  plan.initial.assign(kinds.begin(), kinds.end());
  plan.preferred = *kinds.begin();
  return plan;
}

}  // namespace contory::core
