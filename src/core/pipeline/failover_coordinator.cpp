#include "core/pipeline/failover_coordinator.hpp"

#include "common/logging.hpp"
#include "core/model/vocabulary.hpp"
#include "obs/observability.hpp"
#include "sensors/gps.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "failover";

obs::Gauge& DegradedGauge() {
  static obs::Gauge& g =
      obs::Observability::metrics().GetGauge("queries_degraded");
  return g;
}

}  // namespace

FailoverCoordinator::FailoverCoordinator(
    sim::Simulation& sim, FailoverConfig config, QueryTable& table,
    StrategyPlanner& planner, CxtRepository& repository,
    DeliveryRouter& router, const InternalReference& internal_ref,
    BTReference& bt_ref, Hooks hooks)
    : sim_(sim),
      config_(config),
      table_(table),
      planner_(planner),
      repository_(repository),
      router_(router),
      internal_ref_(internal_ref),
      bt_ref_(bt_ref),
      hooks_(std::move(hooks)) {
  if (!hooks_.assign || !hooks_.cancel) {
    throw std::invalid_argument("FailoverCoordinator: incomplete hooks");
  }
}

void FailoverCoordinator::FinishQuery(const std::string& query_id) {
  recovery_probes_.erase(query_id);
  degraded_tasks_.erase(query_id);
  router_.OnQueryFinished(query_id);
  table_.Finish(query_id);
}

void FailoverCoordinator::DropQuery(const std::string& query_id) {
  recovery_probes_.erase(query_id);
  degraded_tasks_.erase(query_id);
}

bool FailoverCoordinator::DegradeAtAdmission(QueryRecord& record,
                                             const Status& cause) {
  if (!config_.enable_degraded_mode) return false;
  return EnterDegradedMode(record, cause);
}

void FailoverCoordinator::OnFacadeFinished(query::SourceSel kind,
                                           const std::string& query_id,
                                           const Status& status) {
  QueryRecord* record = table_.Find(query_id);
  if (record == nullptr) return;
  record->assigned.erase(kind);
  COBS({
    // The mechanism's provision window ends here, successful or not.
    const std::uint64_t span = EnsureProvisionSpan(*record, kind);
    if (span != 0) {
      obs::Observability::tracer().EndStage(
          span, sim_.Now(),
          status.ok() ? "ok" : "failed: " + status.ToString());
      record->obs.provision[static_cast<std::size_t>(kind)] = 0;
    }
    if (!status.ok()) {
      obs::Observability::metrics()
          .GetCounter("provider_failures_total",
                      {{"mechanism", query::SourceSelName(kind)}})
          .Inc();
    }
  });
  if (status.ok()) {
    // Duration complete on this mechanism; the query is over when no
    // facade still serves it.
    if (record->assigned.empty()) FinishQuery(query_id);
    return;
  }
  CLOG_INFO(kModule, "query %s failed on %s: %s", query_id.c_str(),
            query::SourceSelName(kind), status.ToString().c_str());
  record->failed.insert(kind);
  table_.Transition(*record, QueryState::kFailingOver);
  COBS({
    if (record->obs.failover == 0) {
      record->obs.failover = obs::Observability::tracer().BeginStage(
          record->obs.root, "failover", query::SourceSelName(kind),
          sim_.Now());
    }
  });
  TryFailover(*record, kind, status);
}

void FailoverCoordinator::TryFailover(QueryRecord& record,
                                      query::SourceSel failed_kind,
                                      const Status& status) {
  // "if a BT-GPS device suddenly disconnects, the location provisioning
  // task can be moved from a LocalLocationProvider ... to an
  // AdHocLocationProvider". Mechanisms that already failed — or still
  // serve the query — are not candidates.
  std::set<query::SourceSel> excluded = record.failed;
  excluded.insert(record.assigned.begin(), record.assigned.end());
  const auto replacement = planner_.SelectMechanism(record.query, excluded);
  if (!replacement.ok()) {
    // Last resort before erroring out: serve whatever the repository
    // still holds, annotated with its age.
    if (config_.enable_degraded_mode && EnterDegradedMode(record, status)) {
      return;
    }
    if (record.client != nullptr) {
      record.client->InformError("query " + record.query.id +
                                 " lost its provisioning mechanism (" +
                                 status.ToString() +
                                 ") and no alternative is available");
    }
    if (record.assigned.empty()) {
      FinishQuery(record.query.id);
    } else {
      // Another mechanism still serves the query; resume normal life.
      table_.Transition(record, QueryState::kActive);
      COBS({
        if (record.obs.failover != 0) {
          obs::Observability::tracer().EndStage(record.obs.failover,
                                                sim_.Now(), "resumed");
          record.obs.failover = 0;
        }
      });
    }
    return;
  }
  const Status s = hooks_.assign(record, *replacement);
  if (!s.ok()) {
    record.failed.insert(*replacement);
    TryFailover(record, failed_kind, status);
    return;
  }
  table_.Transition(record, QueryState::kActive);
  COBS({
    obs::Observability::metrics()
        .GetCounter("failovers_total",
                    {{"from", query::SourceSelName(failed_kind)},
                     {"to", query::SourceSelName(*replacement)}})
        .Inc();
    if (record.obs.failover != 0) {
      obs::Observability::tracer().EndStage(
          record.obs.failover, sim_.Now(),
          std::string("switched:") + query::SourceSelName(*replacement));
      record.obs.failover = 0;
    }
  });
  switch_log_.push_back(SwitchEvent{sim_.Now(), record.query.id,
                                    failed_kind, *replacement});
  CLOG_INFO(kModule, "query %s switched %s -> %s", record.query.id.c_str(),
            query::SourceSelName(failed_kind),
            query::SourceSelName(*replacement));
  if (record.client != nullptr) {
    record.client->InformError(
        std::string("provisioning switched from ") +
        query::SourceSelName(failed_kind) + " to " +
        query::SourceSelName(*replacement));
  }
  // Arm the switch-back probe toward the preferred mechanism.
  if (record.plan.preferred == failed_kind) {
    StartRecoveryProbe(record.query.id);
  }
}

void FailoverCoordinator::StartRecoveryProbe(const std::string& query_id) {
  if (recovery_probes_.contains(query_id)) return;
  recovery_probes_[query_id] = std::make_unique<sim::PeriodicTask>(
      sim_, config_.recovery_probe_period,
      [this, query_id] { ProbeRecovery(query_id); });
}

bool FailoverCoordinator::SwitchBackToPreferred(QueryRecord& record) {
  const std::string query_id = record.query.id;
  const query::SourceSel preferred = record.plan.preferred;
  // Tear down the stopgap mechanism(s) and switch back.
  for (const query::SourceSel kind : record.assigned) {
    hooks_.cancel(query_id, kind);
  }
  const auto old = record.assigned;
  record.assigned.clear();
  record.failed.erase(preferred);
  if (!hooks_.assign(record, preferred).ok()) return false;
  switch_log_.push_back(SwitchEvent{sim_.Now(), query_id,
                                    old.empty() ? preferred : *old.begin(),
                                    preferred});
  recovery_probes_.erase(query_id);  // safe: PeriodicTask survives this
  return true;
}

void FailoverCoordinator::ProbeRecovery(const std::string& query_id) {
  QueryRecord* record = table_.Find(query_id);
  if (record == nullptr) {
    recovery_probes_.erase(query_id);
    return;
  }
  const query::SourceSel preferred = record->plan.preferred;
  if (record->assigned.contains(preferred)) {
    recovery_probes_.erase(query_id);
    return;
  }
  // The only probe that needs real work is the BT-GPS one: re-run
  // discovery (this is the 163-292 mW cost Fig. 5 attributes to the
  // switches) and look for the NMEA service.
  if (preferred == query::SourceSel::kIntSensor &&
      (record->query.select_type == vocab::kLocation ||
       record->query.select_type == vocab::kSpeed) &&
      !internal_ref_.HasSourceOfType(record->query.select_type)) {
    if (!bt_ref_.Available()) return;
    bt_ref_.InvalidateDiscoveryCache();
    bt_ref_.Discover(
        SimDuration::zero(),
        [this, query_id](Result<std::vector<net::BtDeviceInfo>> devices) {
          if (!devices.ok() || devices->empty()) return;
          if (table_.Find(query_id) == nullptr) return;
          // Check each device for the GPS service, then switch back.
          const auto device = devices->front();
          bt_ref_.controller()->DiscoverServices(
              device.node, sensors::kGpsServiceName,
              [this, query_id](Result<std::vector<net::ServiceRecord>>
                                   records) {
                if (!records.ok() || records->empty()) return;
                QueryRecord* record = table_.Find(query_id);
                if (record == nullptr) return;
                const query::SourceSel preferred = record->plan.preferred;
                if (record->assigned.contains(preferred)) return;
                if (SwitchBackToPreferred(*record)) {
                  CLOG_INFO(kModule, "query %s switched back to %s",
                            query_id.c_str(),
                            query::SourceSelName(preferred));
                  if (record->client != nullptr) {
                    record->client->InformError(
                        std::string("provisioning restored to ") +
                        query::SourceSelName(preferred));
                  }
                }
              });
        });
    return;
  }
  // Generic probe: switch back as soon as CanServe holds again.
  std::set<query::SourceSel> exclude_all_but_preferred;
  for (const query::SourceSel kind : planner_.preference_order()) {
    if (kind != preferred) exclude_all_but_preferred.insert(kind);
  }
  const auto available =
      planner_.SelectMechanism(record->query, exclude_all_but_preferred);
  if (!available.ok()) return;
  SwitchBackToPreferred(*record);
}

bool FailoverCoordinator::EnterDegradedMode(QueryRecord& record,
                                            const Status& cause) {
  if (record.client == nullptr) return false;
  if (record.degraded()) return true;
  // Degradation is whole-query: while any mechanism still serves it,
  // live data beats stale data and the record stays ACTIVE.
  if (!record.assigned.empty()) return false;
  const std::string id = record.query.id;
  if (!repository_.Latest(record.query.select_type).ok()) {
    return false;  // nothing cached: a stale answer is not possible
  }
  table_.Transition(record, QueryState::kDegraded);
  COBS({
    auto& tracer = obs::Observability::tracer();
    if (record.obs.failover != 0) {
      tracer.EndStage(record.obs.failover, sim_.Now(), "degraded");
      record.obs.failover = 0;
    }
    if (record.obs.degraded == 0) {
      record.obs.degraded =
          tracer.BeginStage(record.obs.root, "degraded", nullptr, sim_.Now());
    }
    obs::Observability::metrics()
        .GetCounter("queries_degraded_total")
        .Inc();
    DegradedGauge().Add(1.0);
  });
  CLOG_INFO(kModule, "query %s degraded (%s): serving stale repository data",
            id.c_str(), cause.ToString().c_str());
  record.client->InformError("query " + id +
                             " degraded to stale repository data (" +
                             cause.ToString() +
                             "); no live provisioning mechanism");
  if (record.query.mode() == query::InteractionMode::kOnDemand) {
    // One stale answer completes an on-demand round.
    DeliverDegraded(id);
    FinishQuery(id);
    return true;
  }
  SimDuration period = config_.degraded_poll_period;
  if (period <= SimDuration::zero()) {
    period = record.query.every.value_or(std::chrono::seconds{5});
  }
  degraded_tasks_[id] = std::make_unique<sim::PeriodicTask>(
      sim_, period, [this, id] { DeliverDegraded(id); });
  // First stale answer now, not one period from now.
  DeliverDegraded(id);
  recovery_probes_[id] = std::make_unique<sim::PeriodicTask>(
      sim_, config_.recovery_probe_period,
      [this, id] { ProbeDegradedRecovery(id); });
  return true;
}

void FailoverCoordinator::DeliverDegraded(const std::string& query_id) {
  QueryRecord* record = table_.Find(query_id);
  if (record == nullptr || !record->degraded() ||
      record->client == nullptr) {
    degraded_tasks_.erase(query_id);
    return;
  }
  // The DURATION clause keeps its meaning while degraded.
  if (record->query.duration.time.has_value() &&
      sim_.Now() >= record->submitted + *record->query.duration.time) {
    FinishQuery(query_id);
    return;
  }
  auto item = repository_.Latest(record->query.select_type);
  if (!item.ok()) return;  // cache expired under us; the probe keeps trying
  ++degraded_deliveries_;
  router_.DeliverStale(*record, *std::move(item));
}

void FailoverCoordinator::ProbeDegradedRecovery(const std::string& query_id) {
  QueryRecord* record = table_.Find(query_id);
  if (record == nullptr || !record->degraded()) {
    recovery_probes_.erase(query_id);
    return;
  }
  // While degraded, any live mechanism beats stale data: reconsider them
  // all, including ones that failed earlier.
  const auto kind = planner_.SelectMechanism(record->query, {});
  if (!kind.ok()) return;  // everything still down
  if (!hooks_.assign(*record, *kind).ok()) return;  // next probe retries
  table_.Transition(*record, QueryState::kActive);
  COBS({
    if (record->obs.degraded != 0) {
      obs::Observability::tracer().EndStage(
          record->obs.degraded, sim_.Now(),
          std::string("recovered:") + query::SourceSelName(*kind));
      record->obs.degraded = 0;
    }
    DegradedGauge().Add(-1.0);
    obs::Observability::metrics()
        .GetCounter("degraded_recoveries_total")
        .Inc();
  });
  record->failed.clear();
  degraded_tasks_.erase(query_id);
  // `from` approximates: degraded mode has no SourceSel of its own.
  switch_log_.push_back(
      SwitchEvent{sim_.Now(), query_id, record->plan.preferred, *kind});
  CLOG_INFO(kModule, "query %s recovered from degraded mode to %s",
            query_id.c_str(), query::SourceSelName(*kind));
  record->client->InformError(std::string("provisioning restored to ") +
                              query::SourceSelName(*kind) +
                              " after degraded mode");
  recovery_probes_.erase(query_id);  // safe: PeriodicTask survives this
}

}  // namespace contory::core
