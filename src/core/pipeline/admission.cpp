#include "core/pipeline/admission.hpp"

#include "obs/observability.hpp"

namespace contory::core {
namespace {

void CountAdmissionOutcome(const Status& s) {
  if (s.ok()) {
    static obs::Counter& admitted =
        obs::Observability::metrics().GetCounter("queries_admitted_total");
    admitted.Inc();
  } else {
    obs::Observability::metrics()
        .GetCounter("queries_rejected_total",
                    {{"code", StatusCodeName(s.code())}})
        .Inc();
  }
}

}  // namespace

Result<QueryId> AdmissionController::Admit(
    query::CxtQuery& query, Client& client,
    const std::set<RuleAction>& active_actions,
    const QueryTable::AdmitOptions& table_options,
    const OverloadGovernor::Decision* pregate,
    OverloadGovernor::Decision* decision_out) {
  Result<QueryId> result = DoAdmit(query, client, active_actions,
                                   table_options, pregate, decision_out);
  COBS(CountAdmissionOutcome(result.ok() ? Status::Ok() : result.status()));
  return result;
}

Result<QueryId> AdmissionController::DoAdmit(
    query::CxtQuery& query, Client& client,
    const std::set<RuleAction>& active_actions,
    const QueryTable::AdmitOptions& table_options,
    const OverloadGovernor::Decision* pregate,
    OverloadGovernor::Decision* decision_out) {
  // Overload gate, in front of everything: an overloaded factory spends
  // nothing on a query it is about to shed. Worker-mode batches supply
  // the decision pre-computed in submission order (the governor's
  // bucket/hysteresis state is simulation-thread-only).
  OverloadGovernor::Decision decision;
  if (pregate != nullptr) {
    decision = *pregate;
  } else if (governor_ != nullptr) {
    decision = governor_->Decide(query, client, active_actions,
                                 table_.active_count());
  }
  if (decision_out != nullptr) *decision_out = decision;
  if (decision.outcome == OverloadGovernor::Decision::Outcome::kShed) {
    return decision.status;
  }

  if (const Status s = query.Validate(); !s.ok()) return s;
  if (query.id.empty()) {
    // Simulation thread only: the id generator is not synchronized.
    // Worker-mode batches pre-assign ids before fanning out.
    query.id = sim_.ids().NextId("q");
  }

  // AccessController screening: a FROM source naming a blocked address is
  // refused outright ("the AccessController keeps track ... of blocked
  // context sources").
  bool extinfra_only = !query.from.IsAuto();
  for (const auto& src : query.from.sources) {
    if (!src.address.empty() && access_.IsBlocked(src.address)) {
      return PermissionDenied("FROM source '" + src.address +
                              "' is blocked by the access controller");
    }
    // An auto source inside an explicit FROM resolves to extInfra.
    if (src.kind != query::SourceSel::kExtInfra &&
        src.kind != query::SourceSel::kAuto) {
      extinfra_only = false;
    }
  }

  // Policy gate: while reducePower is active, new queries that could only
  // ever use the 2G/3G mechanism are refused at the door — admitting them
  // just to StopAll them at the next policy tick wastes a connection
  // setup (the paper's "suspension or termination of high
  // energy-consuming queries", applied at admission).
  if (extinfra_only && active_actions.contains(RuleAction::kReducePower)) {
    return ResourceExhausted(
        "reducePower policy refuses new extInfra-only queries");
  }

  return table_.Admit(query, client, table_options);
}

}  // namespace contory::core
