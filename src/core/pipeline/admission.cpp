#include "core/pipeline/admission.hpp"

#include "obs/observability.hpp"

namespace contory::core {
namespace {

void CountAdmissionOutcome(const Status& s) {
  if (s.ok()) {
    static obs::Counter& admitted =
        obs::Observability::metrics().GetCounter("queries_admitted_total");
    admitted.Inc();
  } else {
    obs::Observability::metrics()
        .GetCounter("queries_rejected_total",
                    {{"code", StatusCodeName(s.code())}})
        .Inc();
  }
}

}  // namespace

Status AdmissionController::Admit(
    query::CxtQuery& query, Client& client,
    const std::set<RuleAction>& active_actions) {
  const Status s = DoAdmit(query, client, active_actions);
  COBS(CountAdmissionOutcome(s));
  return s;
}

Status AdmissionController::DoAdmit(
    query::CxtQuery& query, Client& client,
    const std::set<RuleAction>& active_actions) {
  if (const Status s = query.Validate(); !s.ok()) return s;
  if (query.id.empty()) {
    query.id = sim_.ids().NextId("q");
  }

  // AccessController screening: a FROM source naming a blocked address is
  // refused outright ("the AccessController keeps track ... of blocked
  // context sources").
  bool extinfra_only = !query.from.IsAuto();
  for (const auto& src : query.from.sources) {
    if (!src.address.empty() && access_.IsBlocked(src.address)) {
      return PermissionDenied("FROM source '" + src.address +
                              "' is blocked by the access controller");
    }
    // An auto source inside an explicit FROM resolves to extInfra.
    if (src.kind != query::SourceSel::kExtInfra &&
        src.kind != query::SourceSel::kAuto) {
      extinfra_only = false;
    }
  }

  // Policy gate: while reducePower is active, new queries that could only
  // ever use the 2G/3G mechanism are refused at the door — admitting them
  // just to StopAll them at the next policy tick wastes a connection
  // setup (the paper's "suspension or termination of high
  // energy-consuming queries", applied at admission).
  if (extinfra_only && active_actions.contains(RuleAction::kReducePower)) {
    return ResourceExhausted(
        "reducePower policy refuses new extInfra-only queries");
  }

  return table_.Admit(query, client);
}

}  // namespace contory::core
