#include "core/pipeline/query_table.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "obs/observability.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "querytable";

/// Cached registry handles (stable across Reset(); see MetricsRegistry).
obs::Gauge& LiveGauge() {
  static obs::Gauge& g =
      obs::Observability::metrics().GetGauge("queries_live");
  return g;
}

obs::Counter& CompletedCounter(QueryState from) {
  static obs::Counter* by_state[5] = {};
  auto& slot = by_state[static_cast<std::size_t>(from)];
  if (slot == nullptr) {
    slot = &obs::Observability::metrics().GetCounter(
        "queries_completed_total", {{"state", QueryStateName(from)}});
  }
  return *slot;
}

}  // namespace

std::uint64_t EnsureProvisionSpan(QueryRecord& record,
                                  query::SourceSel kind) {
  const auto i = static_cast<std::size_t>(kind);
  QueryRecord::ObsSpans& spans = record.obs;
  if (spans.provision[i] == 0 && spans.provision_pending[i]) {
    spans.provision_pending[i] = false;
    spans.provision[i] = obs::Observability::tracer().BeginStageAt(
        spans.root, "provision", query::SourceSelName(kind),
        spans.provision_start[i], spans.provision_energy0[i]);
  }
  return spans.provision[i];
}

QueryTable::~QueryTable() {
  COBS({
    auto& tracer = obs::Observability::tracer();
    for (auto& [id, record] : records_) {
      QueryRecord::ObsSpans& spans = record.obs;
      for (std::size_t k = 0; k < 4; ++k) {
        const std::uint64_t sid =
            EnsureProvisionSpan(record, static_cast<query::SourceSel>(k));
        if (sid != 0) tracer.EndStage(sid, sim_.Now(), "torn-down");
      }
      if (spans.failover != 0) {
        tracer.EndStage(spans.failover, sim_.Now(), "torn-down");
      }
      if (spans.degraded != 0) {
        tracer.EndStage(spans.degraded, sim_.Now(), "torn-down");
      }
      if (spans.root != 0) {
        tracer.EndQuery(spans.root, sim_.Now(), "torn-down");
        LiveGauge().Add(-1.0);
      }
      if (record.state == QueryState::kDegraded) {
        obs::Observability::metrics().GetGauge("queries_degraded").Add(-1.0);
      }
    }
  });
}

const char* QueryStateName(QueryState state) noexcept {
  switch (state) {
    case QueryState::kAdmitted: return "ADMITTED";
    case QueryState::kActive: return "ACTIVE";
    case QueryState::kFailingOver: return "FAILING_OVER";
    case QueryState::kDegraded: return "DEGRADED";
    case QueryState::kDone: return "DONE";
  }
  return "?";
}

Status QueryTable::Admit(query::CxtQuery query, Client& client) {
  if (query.id.empty()) {
    return InvalidArgument("query must have an id before registration");
  }
  if (records_.contains(query.id)) {
    return AlreadyExists("query '" + query.id + "' already active");
  }
  QueryRecord record;
  record.query = std::move(query);
  record.client = &client;
  record.state = QueryState::kAdmitted;
  record.submitted = sim_.Now();
  COBS({
    record.obs.root = obs::Observability::tracer().BeginQuery(
        record.query.id, record.submitted, energy_probe_);
    LiveGauge().Add(1.0);
  });
  records_.emplace(record.query.id, std::move(record));
  ++total_admitted_;
  return Status::Ok();
}

QueryRecord* QueryTable::Find(const std::string& id) {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

const QueryRecord* QueryTable::Find(const std::string& id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

bool QueryTable::ValidEdge(QueryState from, QueryState to) noexcept {
  if (from == QueryState::kDone) return false;  // terminal
  switch (to) {
    case QueryState::kAdmitted:
      return false;  // admission happens once, via Admit()
    case QueryState::kActive:
      // Assignment, failover success, or degraded recovery.
      return from == QueryState::kAdmitted ||
             from == QueryState::kFailingOver ||
             from == QueryState::kDegraded;
    case QueryState::kFailingOver:
      return from == QueryState::kActive;
    case QueryState::kDegraded:
      return from == QueryState::kFailingOver;
    case QueryState::kDone:
      return true;  // any live state may finish (cancel, expiry, error)
  }
  return false;
}

bool QueryTable::Transition(QueryRecord& record, QueryState to) {
  if (record.state == to) return true;  // idempotent self-edge
  if (!ValidEdge(record.state, to)) {
    ++invalid_transitions_;
    if (invalid_transitions_ == 1) {
      CLOG_WARN(kModule,
                "first refused state-machine edge observed — a pipeline "
                "stage is driving the lifecycle out of order");
    }
    COBS(obs::Observability::metrics()
             .GetCounter("query_invalid_transitions_total")
             .Inc());
    CLOG_WARN(kModule, "query %s: refused %s -> %s",
              record.query.id.c_str(), QueryStateName(record.state),
              QueryStateName(to));
    return false;
  }
  record.state = to;
  return true;
}

void QueryTable::Finish(const std::string& id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  const QueryState from = it->second.state;
  const SimTime now = sim_.Now();
  COBS({
    // Single close point for the whole span tree: any stage span still
    // open at the terminal transition is force-closed here, then the
    // root closes exactly once with the state the query finished from.
    auto& tracer = obs::Observability::tracer();
    QueryRecord::ObsSpans& spans = it->second.obs;
    for (std::size_t k = 0; k < 4; ++k) {
      const std::uint64_t sid =
          EnsureProvisionSpan(it->second, static_cast<query::SourceSel>(k));
      if (sid != 0) tracer.EndStage(sid, now, "closed-at-finish");
      spans.provision[k] = 0;
    }
    if (spans.failover != 0) {
      tracer.EndStage(spans.failover, now, "closed-at-finish");
      spans.failover = 0;
    }
    if (spans.degraded != 0) {
      tracer.EndStage(spans.degraded, now, "closed-at-finish");
      spans.degraded = 0;
    }
    if (spans.root != 0) {
      tracer.EndQuery(spans.root, now, QueryStateName(from));
      spans.root = 0;
    }
    LiveGauge().Add(-1.0);
    CompletedCounter(from).Inc();
    // A query that dies while degraded leaves the degraded population;
    // recovery (the other exit) decrements in the FailoverCoordinator.
    if (from == QueryState::kDegraded) {
      static obs::Gauge& degraded =
          obs::Observability::metrics().GetGauge("queries_degraded");
      degraded.Add(-1.0);
    }
  });
  completions_.push_back(Completion{id, from, now});
  records_.erase(it);
}

bool QueryTable::RecordDelivery(QueryRecord& record,
                                const std::string& item_id) {
  if (record.seen_items.contains(item_id)) return false;
  record.seen_items.insert(item_id);
  record.seen_order.push_back(item_id);
  while (record.seen_order.size() > kSeenCap) {
    record.seen_items.erase(record.seen_order.front());
    record.seen_order.erase(record.seen_order.begin());
  }
  ++record.items_delivered;
  return true;
}

std::vector<std::string> QueryTable::ActiveIds() const {
  std::vector<std::string> ids;
  ids.reserve(records_.size());
  for (const auto& [id, record] : records_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace contory::core
