#include "core/pipeline/query_table.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "querytable";
}

const char* QueryStateName(QueryState state) noexcept {
  switch (state) {
    case QueryState::kAdmitted: return "ADMITTED";
    case QueryState::kActive: return "ACTIVE";
    case QueryState::kFailingOver: return "FAILING_OVER";
    case QueryState::kDegraded: return "DEGRADED";
    case QueryState::kDone: return "DONE";
  }
  return "?";
}

Status QueryTable::Admit(query::CxtQuery query, Client& client) {
  if (query.id.empty()) {
    return InvalidArgument("query must have an id before registration");
  }
  if (records_.contains(query.id)) {
    return AlreadyExists("query '" + query.id + "' already active");
  }
  QueryRecord record;
  record.query = std::move(query);
  record.client = &client;
  record.state = QueryState::kAdmitted;
  record.submitted = sim_.Now();
  records_.emplace(record.query.id, std::move(record));
  ++total_admitted_;
  return Status::Ok();
}

QueryRecord* QueryTable::Find(const std::string& id) {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

const QueryRecord* QueryTable::Find(const std::string& id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

bool QueryTable::ValidEdge(QueryState from, QueryState to) noexcept {
  if (from == QueryState::kDone) return false;  // terminal
  switch (to) {
    case QueryState::kAdmitted:
      return false;  // admission happens once, via Admit()
    case QueryState::kActive:
      // Assignment, failover success, or degraded recovery.
      return from == QueryState::kAdmitted ||
             from == QueryState::kFailingOver ||
             from == QueryState::kDegraded;
    case QueryState::kFailingOver:
      return from == QueryState::kActive;
    case QueryState::kDegraded:
      return from == QueryState::kFailingOver;
    case QueryState::kDone:
      return true;  // any live state may finish (cancel, expiry, error)
  }
  return false;
}

bool QueryTable::Transition(QueryRecord& record, QueryState to) {
  if (record.state == to) return true;  // idempotent self-edge
  if (!ValidEdge(record.state, to)) {
    ++invalid_transitions_;
    CLOG_WARN(kModule, "query %s: refused %s -> %s",
              record.query.id.c_str(), QueryStateName(record.state),
              QueryStateName(to));
    return false;
  }
  record.state = to;
  return true;
}

void QueryTable::Finish(const std::string& id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  completions_.push_back(Completion{id, it->second.state, sim_.Now()});
  records_.erase(it);
}

bool QueryTable::RecordDelivery(QueryRecord& record,
                                const std::string& item_id) {
  if (record.seen_items.contains(item_id)) return false;
  record.seen_items.insert(item_id);
  record.seen_order.push_back(item_id);
  while (record.seen_order.size() > kSeenCap) {
    record.seen_items.erase(record.seen_order.front());
    record.seen_order.erase(record.seen_order.begin());
  }
  ++record.items_delivered;
  return true;
}

std::vector<std::string> QueryTable::ActiveIds() const {
  std::vector<std::string> ids;
  ids.reserve(records_.size());
  for (const auto& [id, record] : records_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace contory::core
