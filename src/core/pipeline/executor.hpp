// PipelineExecutor: runs the split submit path — a worker-safe front
// half (admission + planning) and a simulation-thread back half (facade
// assignment / activation) — over a batch of queries.
//
// Two modes, selected by `workers`:
//
//   0 (deterministic) — every query runs front-then-back inline on the
//     calling thread, in submission order: byte-identical sequencing to
//     calling the per-query path in a loop. This is what the simulation
//     and the test suite use.
//
//   N > 0 (worker) — N threads pull indices from a shared cursor and run
//     the front half concurrently; each admitted index is handed to the
//     calling thread through a bounded lock-free MPMC ring, and the
//     caller drains the ring running back halves while the workers are
//     still producing. Per-query outcome slots are disjoint (indexed by
//     the query's position), so the only cross-thread traffic is the
//     ring itself and the sharded table's per-shard insert locks.
//     Back-half order is whatever the ring yields — the final table
//     state is the same set of activated queries, but event *order* is
//     not deterministic; worker mode is for the submit hot path, never
//     for reproducible simulation runs.
//
// The executor knows nothing about queries: it moves indices. The
// ContextFactory supplies the two halves as callbacks and owns the
// per-index inputs/outcomes.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

namespace contory::core {

struct PipelineExecutorOptions {
  /// 0 = inline deterministic mode; N = admission worker threads.
  std::size_t workers = 0;
  /// Bound of the admitted-index ring (rounded up to a power of two).
  /// A full ring back-pressures workers (they yield until the caller
  /// drains), so capacity only tunes batching, not correctness.
  std::size_t ring_capacity = 2048;
};

class PipelineExecutor {
 public:
  /// Front half for index i. Runs on a worker thread in worker mode —
  /// must only touch thread-safe state (sharded table inserts, atomics).
  /// Return true to hand the index to the back half.
  using FrontFn = std::function<bool(std::size_t)>;
  /// Back half for index i. Always runs on the calling thread.
  using BackFn = std::function<void(std::size_t)>;

  explicit PipelineExecutor(PipelineExecutorOptions options = {})
      : options_(options) {}

  /// Runs front/back over indices [0, count). Returns when every front
  /// has run and every true-returning index's back has run.
  void Run(std::size_t count, const FrontFn& front, const BackFn& back);

  [[nodiscard]] std::size_t workers() const noexcept {
    return options_.workers;
  }

  /// Deepest the admitted-index ring ever got during Run (0 in
  /// deterministic mode — the ring is never built). An approximate
  /// sample — each producer reads size() right after its own push — but
  /// tight enough to tune ring_capacity and spot back-pressure.
  [[nodiscard]] std::size_t ring_high_watermark() const noexcept {
    return ring_high_.load(std::memory_order_relaxed);
  }

 private:
  PipelineExecutorOptions options_;
  std::atomic<std::size_t> ring_high_{0};
};

}  // namespace contory::core
