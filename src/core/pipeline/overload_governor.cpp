#include "core/pipeline/overload_governor.hpp"

#include <algorithm>
#include <cstdio>

#include "common/logging.hpp"
#include "obs/observability.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "overload";

/// "retry after 0.250s" — the typed status hint; ParseRetryAfterSeconds
/// is its inverse.
std::string RetryAfterHint(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "retry after %.3fs",
                std::max(seconds, 0.0));
  return buf;
}

obs::Gauge& ShedLevelGauge() {
  static obs::Gauge& g =
      obs::Observability::metrics().GetGauge("overload_shed_level");
  return g;
}

void CountShed(query::QueryPriority cls) {
  obs::Observability::metrics()
      .GetCounter("admission_shed_total",
                  {{"class", query::QueryPriorityName(cls)}})
      .Inc();
}

}  // namespace

const char* ShedLevelName(ShedLevel level) noexcept {
  switch (level) {
    case ShedLevel::kNone: return "none";
    case ShedLevel::kBackground: return "background";
    case ShedLevel::kStandard: return "standard";
  }
  return "?";
}

OverloadGovernor::OverloadGovernor(sim::Simulation& sim,
                                   const CxtRepository& repository,
                                   OverloadGovernorConfig config)
    : sim_(sim), repository_(repository), config_(config) {
  high_wm_ = config_.shed_high_watermark;
  if (high_wm_ != 0) {
    standard_wm_ = config_.shed_standard_watermark != 0
                       ? config_.shed_standard_watermark
                       : high_wm_ * 2;
    low_wm_ = config_.shed_low_watermark != 0 ? config_.shed_low_watermark
                                              : high_wm_ / 2;
    standard_wm_ = std::max(standard_wm_, high_wm_);
    low_wm_ = std::min(low_wm_, high_wm_);
  }
}

OverloadGovernor::Bucket& OverloadGovernor::BucketFor(const Client& client,
                                                      SimTime now) {
  const auto [it, created] = buckets_.try_emplace(&client);
  Bucket& b = it->second;
  if (created) {
    b.tokens = burst();
    b.last = now;
    COBS({
      // Clients have no names; label buckets in first-seen order.
      b.gauge = &obs::Observability::metrics().GetGauge(
          "overload_bucket_tokens",
          {{"client", "c" + std::to_string(buckets_.size() - 1)}});
    });
    return b;
  }
  b.tokens = std::min(
      burst(),
      b.tokens + ToSeconds(now - b.last) * config_.admit_rate_per_s);
  b.last = now;
  return b;
}

void OverloadGovernor::UpdateLevel(std::size_t occupancy) {
  if (high_wm_ == 0) return;
  if (occupancy >= standard_wm_) {
    level_ = ShedLevel::kStandard;
  } else if (occupancy >= high_wm_) {
    // Rising edge engages background shedding; an engaged standard
    // level holds until occupancy falls below the high watermark.
    if (level_ == ShedLevel::kNone) level_ = ShedLevel::kBackground;
  } else if (occupancy < low_wm_) {
    level_ = ShedLevel::kNone;
  } else if (level_ == ShedLevel::kStandard) {
    // Between the low and high watermarks: standard traffic resumes,
    // background stays shed until the low watermark clears it.
    level_ = ShedLevel::kBackground;
  }
}

bool OverloadGovernor::StaleEligible(const query::CxtQuery& query,
                                     SimTime now) const {
  if (!config_.stale_fast_path) return false;
  const auto item = repository_.Latest(query.select_type);
  if (!item.ok()) return false;
  SimDuration max_age = config_.stale_answer_max_age;
  if (query.freshness.has_value()) {
    max_age = std::min(max_age, *query.freshness);
  }
  return item->IsFresh(now, max_age);
}

OverloadGovernor::Decision OverloadGovernor::Decide(
    const query::CxtQuery& query, const Client& client,
    const std::set<RuleAction>& active_actions, std::size_t occupancy) {
  Decision d;
  d.cls = query.priority;
  if (!Armed(active_actions)) return d;

  const SimTime now = sim_.Now();

  // Gate 1: per-client token bucket. Every submission attempt spends a
  // token; an empty bucket refuses outright (no stale fast path — the
  // client is over its own budget, not a victim of global pressure).
  if (config_.admit_rate_per_s > 0.0) {
    Bucket& b = BucketFor(client, now);
    if (b.tokens < 1.0) {
      d.outcome = Decision::Outcome::kShed;
      d.rate_limited = true;
      d.status = Overloaded(
          "client admission budget exhausted; " +
          RetryAfterHint((1.0 - b.tokens) / config_.admit_rate_per_s));
      COBS({
        obs::Observability::metrics()
            .GetCounter("rate_limited_total")
            .Inc();
        if (b.gauge != nullptr) b.gauge->Set(b.tokens);
      });
      CLOG_DEBUG(kModule, "rate-limited a %s-class submission",
                 query::QueryPriorityName(d.cls));
      return d;
    }
    b.tokens -= 1.0;
    COBS(if (b.gauge != nullptr) b.gauge->Set(b.tokens));
  }

  // Gate 2: queue-depth shedding, graduated by priority class. The
  // reduceLoad context rule forces at least background shedding.
  UpdateLevel(occupancy);
  ShedLevel effective = level_;
  if (active_actions.contains(RuleAction::kReduceLoad)) {
    effective = std::max(effective, ShedLevel::kBackground);
  }
  COBS(ShedLevelGauge().Set(static_cast<double>(effective)));
  const bool shed =
      (effective >= ShedLevel::kBackground &&
       d.cls == query::QueryPriority::kBackground) ||
      (effective >= ShedLevel::kStandard &&
       d.cls == query::QueryPriority::kStandard);
  if (!shed) {
    if (effective != ShedLevel::kNone) d.note = "admitted-under-shed";
    return d;
  }

  d.status = Overloaded(
      "shedding " + std::string(query::QueryPriorityName(d.cls)) +
      "-class admissions (occupancy " + std::to_string(occupancy) +
      ", shed level " + ShedLevelName(effective) + "); " +
      RetryAfterHint(ToSeconds(config_.shed_retry_hint)));
  COBS(CountShed(d.cls));
  if (StaleEligible(query, now)) {
    // Stale-answer-first: the record admits but skips planning and is
    // served from the repository by the degraded-mode machinery.
    d.outcome = Decision::Outcome::kDegrade;
    d.note = "shed:stale-fastpath";
    COBS(obs::Observability::metrics()
             .GetCounter("admission_stale_fastpath_total")
             .Inc());
    return d;
  }
  d.outcome = Decision::Outcome::kShed;
  return d;
}

double OverloadGovernor::TokensFor(const Client& client) const {
  const auto it = buckets_.find(&client);
  if (it == buckets_.end()) return burst();
  const Bucket& b = it->second;
  return std::min(b.tokens + ToSeconds(sim_.Now() - b.last) *
                                 config_.admit_rate_per_s,
                  burst());
}

double OverloadGovernor::ParseRetryAfterSeconds(const std::string& message) {
  const std::string needle = "retry after ";
  const auto pos = message.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(message.c_str() + pos + needle.size(), nullptr);
}

}  // namespace contory::core
