#include "core/pipeline/executor.hpp"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/ring.hpp"

namespace contory::core {

void PipelineExecutor::Run(std::size_t count, const FrontFn& front,
                           const BackFn& back) {
  if (options_.workers == 0 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (front(i)) back(i);
    }
    return;
  }

  MpmcRing<std::uint64_t> ring(options_.ring_capacity);
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> workers_done{0};
  const std::size_t nworkers = options_.workers;

  std::vector<std::thread> workers;
  workers.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        if (front(i)) {
          // Full ring: the caller is draining it concurrently, so this
          // always clears; yielding keeps the backpressure cheap.
          while (!ring.TryPush(static_cast<std::uint64_t>(i))) {
            std::this_thread::yield();
          }
          // Sample the depth after our own push lands; atomic-max keeps
          // the deepest observation across all producers.
          const std::size_t depth = ring.size();
          std::size_t seen = ring_high_.load(std::memory_order_relaxed);
          while (depth > seen &&
                 !ring_high_.compare_exchange_weak(
                     seen, depth, std::memory_order_relaxed)) {
          }
        }
      }
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Drain back halves while the workers produce. Exit only after every
  // worker has finished (acquire pairs with their release increment, so
  // all pushes are visible) and a subsequent pop finds the ring empty.
  for (;;) {
    std::uint64_t i = 0;
    if (ring.TryPop(i)) {
      back(static_cast<std::size_t>(i));
      continue;
    }
    if (workers_done.load(std::memory_order_acquire) == nworkers) {
      if (ring.TryPop(i)) {
        back(static_cast<std::size_t>(i));
        continue;
      }
      break;
    }
    std::this_thread::yield();
  }

  for (std::thread& t : workers) t.join();
}

}  // namespace contory::core
