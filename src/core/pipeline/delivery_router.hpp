// DeliveryRouter (pipeline stage 4 of 4).
//
// Everything between a facade's post-extracted delivery and the client:
// cross-facade dedup, optional fusion windows (EnableFusion), the
// repository write-through, staleness annotation for degraded answers,
// and per-client delivery queues. The queues make delivery reentrancy-
// safe: a client that submits or cancels queries from inside the
// delivery callback can trigger nested deliveries, which are appended to
// its queue and handed over in order by the outermost drain — all within
// the same simulation event, so timing stays deterministic. The drain
// hands each round over as one ReceiveCxtItems batch (one virtual
// dispatch per drain, not per item); a nested cancel purges items still
// queued, never a batch already handed over.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/status.hpp"
#include "core/model/cxt_item.hpp"
#include "core/pipeline/sharded_query_table.hpp"
#include "core/providers/aggregator.hpp"
#include "core/repository.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class DeliveryRouter {
 public:
  DeliveryRouter(sim::Simulation& sim, QueryTable& table,
                 CxtRepository& repository)
      : sim_(sim), table_(table), repository_(repository) {}

  /// Facade delivery entry: dedup across mechanisms, fusion, repository
  /// store, then the per-client queue. `mechanism` names the facade kind
  /// that produced the item (delivery metrics + span attribution).
  void OnFacadeDelivery(const std::string& query_id, const CxtItem& item,
                        query::SourceSel mechanism);

  /// Degraded-mode delivery: annotates the item's age before routing
  /// ("explicit staleness metadata instead of erroring").
  void DeliverStale(QueryRecord& record, CxtItem item);

  /// Installs (or replaces) a fusion window for an active query.
  Status EnableFusion(const std::string& query_id, AggregatorConfig config);

  /// The query finished normally: drop its fusion state but let already-
  /// queued items reach the client.
  void OnQueryFinished(const std::string& query_id);
  /// The query was cancelled: additionally purge queued undelivered items.
  void OnQueryCancelled(const std::string& query_id);

  /// Items handed to clients so far (diagnostics).
  [[nodiscard]] std::uint64_t items_routed() const noexcept {
    return items_routed_;
  }

 private:
  struct Pending {
    std::string query_id;
    CxtItem item;
  };
  struct ClientQueue {
    std::deque<Pending> items;
    /// True while the outermost Route() call is handing items over;
    /// nested Route() calls only append.
    bool draining = false;
  };

  void Route(QueryRecord& record, const CxtItem& item);

  sim::Simulation& sim_;
  QueryTable& table_;
  CxtRepository& repository_;
  std::map<std::string, CxtAggregator> aggregators_;
  /// std::map, not unordered_map: node-based, so the reference a drain
  /// loop holds stays valid when a nested delivery inserts a new client.
  std::map<Client*, ClientQueue> queues_;
  std::uint64_t items_routed_ = 0;
};

}  // namespace contory::core
