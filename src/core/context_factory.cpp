#include "core/context_factory.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/model/vocabulary.hpp"
#include "core/providers/infra_provider.hpp"
#include "core/providers/local_provider.hpp"
#include "infra/context_server.hpp"
#include "infra/event_broker.hpp"
#include "sensors/gps.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "factory";

DeviceServices Validated(DeviceServices services) {
  services.CheckRequired();
  return services;
}

}  // namespace

void DeviceServices::CheckRequired() const {
  if (sim == nullptr || phone == nullptr || medium == nullptr ||
      node == net::kInvalidNode) {
    throw std::invalid_argument(
        "DeviceServices: sim, phone, medium, and node are required");
  }
}

ContextFactory::ContextFactory(DeviceServices services,
                               ContextFactoryConfig config)
    : services_(Validated(std::move(services))),
      config_(config),
      internal_ref_(),
      bt_ref_(*services_.sim, services_.bt),
      wifi_ref_(services_.wifi, services_.sm),
      cell_ref_(services_.modem),
      monitor_(*services_.sim, *services_.phone, config_.resources),
      access_(config_.access),
      repository_(*services_.sim, config_.repository),
      query_manager_(*services_.sim) {
  publisher_ = std::make_unique<CxtPublisher>(bt_ref_, wifi_ref_);
  WireReferences();
  BuildFacades();

  // Join the SM overlay and expose the home tag SM-FINDERs route back to.
  if (services_.sm != nullptr) {
    wifi_ref_.SetParticipating(true);
    services_.sm->tags().Upsert(HomeTagName(services_.node), "1");
    RegisterFinderBrick(*services_.sm);
  }

  // The middleware's own runtime draw (+1.64 mW, Sec. 6.1).
  services_.phone->SetContoryRunning(true);

  policy_task_ = std::make_unique<sim::PeriodicTask>(
      *services_.sim, config_.policy_period, [this] { EvaluatePolicies(); });
}

ContextFactory::~ContextFactory() {
  *life_ = false;
  services_.phone->SetContoryRunning(false);
}

void ContextFactory::WireReferences() {
  monitor_.Attach(internal_ref_);
  monitor_.Attach(bt_ref_);
  monitor_.Attach(wifi_ref_);
  monitor_.Attach(cell_ref_);
  monitor_.SetMemoryGauge([this] { return repository_.size(); });
  monitor_.SetQueryGauge([this] { return query_manager_.active_count(); });
  monitor_.SetProviderGauge([this] { return active_provider_count(); });
}

std::unique_ptr<CxtProvider> ContextFactory::MakeProvider(
    query::SourceSel kind, query::CxtQuery q,
    CxtProvider::Callbacks callbacks) {
  QueryRecord* record = query_manager_.Find(q.id);
  Client* client = record != nullptr ? record->client : nullptr;
  switch (kind) {
    case query::SourceSel::kIntSensor:
      // No retry policy: a vanished sensor is not transient, and an
      // immediate escalation preserves the Fig. 5 failover timing.
      return std::make_unique<LocalCxtProvider>(
          *services_.sim, std::move(q), std::move(callbacks), internal_ref_,
          bt_ref_, access_, client);
    case query::SourceSel::kExtInfra: {
      std::string address = services_.default_infra_address;
      for (const auto& src : q.from.sources) {
        if (src.kind == query::SourceSel::kExtInfra && !src.address.empty()) {
          address = src.address;
        }
      }
      auto provider = std::make_unique<InfraCxtProvider>(
          *services_.sim, std::move(q), std::move(callbacks), cell_ref_,
          std::move(address));
      provider->ConfigureRetry(config_.retry);
      return provider;
    }
    case query::SourceSel::kAdHocNetwork: {
      const AdHocTransport transport =
          active_actions_.contains(RuleAction::kReducePower)
              ? AdHocTransport::kForceBt
              : AdHocTransport::kAuto;
      auto provider = std::make_unique<AdHocCxtProvider>(
          *services_.sim, std::move(q), std::move(callbacks), bt_ref_,
          wifi_ref_, access_, client, transport,
          config_.adhoc_finder_retries);
      provider->ConfigureRetry(config_.retry);
      return provider;
    }
    case query::SourceSel::kAuto:
      break;
  }
  throw std::logic_error("MakeProvider: unresolved source kind");
}

void ContextFactory::BuildFacades() {
  for (const query::SourceSel kind :
       {query::SourceSel::kIntSensor, query::SourceSel::kExtInfra,
        query::SourceSel::kAdHocNetwork}) {
    query::MergePolicy policy = config_.merge_policy;
    if (!config_.enable_query_merging) {
      policy.threshold = -1.0;  // nothing merges
    }
    auto facade = std::make_unique<Facade>(
        *services_.sim, kind,
        [this, kind](query::CxtQuery q, CxtProvider::Callbacks callbacks) {
          return MakeProvider(kind, std::move(q), std::move(callbacks));
        },
        policy);
    facade->SetDelivery(
        [this, kind](const std::string& query_id, const CxtItem& item) {
          OnDelivery(kind, query_id, item);
        });
    facade->SetFinished(
        [this, kind](const std::string& query_id, const Status& status) {
          OnFinished(kind, query_id, status);
        });
    facades_.emplace(kind, std::move(facade));
  }
}

Facade& ContextFactory::facade(query::SourceSel kind) {
  return *facades_.at(kind);
}

std::size_t ContextFactory::active_provider_count() const {
  std::size_t n = 0;
  for (const auto& [kind, facade] : facades_) {
    n += facade->active_provider_count();
  }
  return n;
}

std::set<query::SourceSel> ContextFactory::CurrentMechanisms(
    const std::string& query_id) const {
  const QueryRecord* record = query_manager_.Find(query_id);
  return record != nullptr ? record->assigned : std::set<query::SourceSel>{};
}

Result<query::SourceSel> ContextFactory::SelectMechanism(
    const query::CxtQuery& q,
    const std::set<query::SourceSel>& excluded) const {
  // Preference order: own sensors (cheapest), then the ad hoc network,
  // then the infrastructure (the 14 J hammer). Control policies bias the
  // order: reducePower demotes extInfra below everything.
  std::vector<query::SourceSel> order{query::SourceSel::kIntSensor,
                                      query::SourceSel::kAdHocNetwork,
                                      query::SourceSel::kExtInfra};
  for (const query::SourceSel kind : order) {
    if (excluded.contains(kind)) continue;
    switch (kind) {
      case query::SourceSel::kIntSensor:
        if (LocalCxtProvider::CanServe(q, internal_ref_, bt_ref_)) {
          return kind;
        }
        break;
      case query::SourceSel::kAdHocNetwork:
        if (AdHocCxtProvider::CanServe(bt_ref_, wifi_ref_)) return kind;
        break;
      case query::SourceSel::kExtInfra:
        if (active_actions_.contains(RuleAction::kReducePower)) break;
        if (InfraCxtProvider::CanServe(cell_ref_,
                                       services_.default_infra_address)) {
          return kind;
        }
        break;
      case query::SourceSel::kAuto:
        break;
    }
  }
  return Unavailable("no provisioning mechanism can serve '" +
                     q.select_type + "'");
}

Result<std::string> ContextFactory::ProcessCxtQuery(query::CxtQuery query,
                                                    Client& client) {
  if (const Status s = query.Validate(); !s.ok()) return s;
  if (query.id.empty()) {
    query.id = services_.sim->ids().NextId("q");
  }
  const std::string id = query.id;
  if (const Status s = query_manager_.Register(query, client); !s.ok()) {
    return s;
  }
  QueryRecord* record = query_manager_.Find(id);

  // Facade assignment: explicit FROM sources, or transparent selection.
  std::set<query::SourceSel> kinds;
  if (query.from.IsAuto()) {
    const auto kind = SelectMechanism(query, {});
    if (!kind.ok()) {
      query_manager_.Remove(id);
      return kind.status();
    }
    kinds.insert(*kind);
    record->preferred = *kind;
  } else {
    for (const auto& src : query.from.sources) {
      kinds.insert(src.kind == query::SourceSel::kAuto
                       ? query::SourceSel::kExtInfra
                       : src.kind);
    }
    record->preferred = *kinds.begin();
  }

  Status last;
  std::size_t assigned = 0;
  for (const query::SourceSel kind : kinds) {
    const Status s = AssignToFacade(*record, kind);
    if (s.ok()) {
      ++assigned;
    } else {
      last = s;
    }
  }
  if (assigned == 0) {
    query_manager_.Remove(id);
    return last;
  }
  CLOG_INFO(kModule, "query %s (%s) assigned to %zu facade(s)", id.c_str(),
            query.select_type.c_str(), assigned);
  return id;
}

Status ContextFactory::AssignToFacade(QueryRecord& record,
                                      query::SourceSel kind) {
  const Status s = facades_.at(kind)->Submit(record.query);
  if (s.ok()) record.assigned.insert(kind);
  return s;
}

void ContextFactory::CancelCxtQuery(const std::string& query_id) {
  QueryRecord* record = query_manager_.Find(query_id);
  if (record == nullptr) return;
  for (const query::SourceSel kind : record->assigned) {
    facades_.at(kind)->Cancel(query_id);
  }
  recovery_probes_.erase(query_id);
  degraded_tasks_.erase(query_id);
  aggregators_.erase(query_id);
  query_manager_.Remove(query_id);
}

void ContextFactory::OnDelivery(query::SourceSel kind,
                                const std::string& query_id,
                                const CxtItem& item) {
  (void)kind;
  QueryRecord* record = query_manager_.Find(query_id);
  if (record == nullptr || record->client == nullptr) return;
  // Dedup by item id only when several mechanisms serve the query; a
  // single mechanism legitimately re-delivers an unchanged observation on
  // every periodic round.
  const bool multi_mechanism = record->assigned.size() > 1;
  const bool fresh = query_manager_.RecordDelivery(*record, item.id);
  if (!fresh) {
    if (multi_mechanism) return;  // duplicate across mechanisms
    ++record->items_delivered;    // same observation, new periodic round
  }
  // Optional fusion aggregation for multi-mechanism queries.
  const auto agg = aggregators_.find(query_id);
  if (agg != aggregators_.end()) {
    auto fused = agg->second.Process(item);
    if (!fused.has_value()) return;
    repository_.Store(*fused);
    record->client->ReceiveCxtItem(*fused);
    return;
  }
  repository_.Store(item);
  record->client->ReceiveCxtItem(item);
}

void ContextFactory::OnFinished(query::SourceSel kind,
                                const std::string& query_id,
                                const Status& status) {
  QueryRecord* record = query_manager_.Find(query_id);
  if (record == nullptr) return;
  record->assigned.erase(kind);
  if (status.ok()) {
    // Duration complete on this mechanism; the query is over when no
    // facade still serves it.
    if (record->assigned.empty()) {
      recovery_probes_.erase(query_id);
      degraded_tasks_.erase(query_id);
      aggregators_.erase(query_id);
      query_manager_.Remove(query_id);
    }
    return;
  }
  CLOG_INFO(kModule, "query %s failed on %s: %s", query_id.c_str(),
            query::SourceSelName(kind), status.ToString().c_str());
  record->failed.insert(kind);
  TryFailover(*record, kind, status);
}

void ContextFactory::TryFailover(QueryRecord& record,
                                 query::SourceSel failed_kind,
                                 const Status& status) {
  // "if a BT-GPS device suddenly disconnects, the location provisioning
  // task can be moved from a LocalLocationProvider ... to an
  // AdHocLocationProvider".
  const auto replacement = SelectMechanism(record.query, record.failed);
  if (!replacement.ok()) {
    // Last resort before erroring out: serve whatever the repository
    // still holds, annotated with its age.
    if (config_.enable_degraded_mode && EnterDegradedMode(record, status)) {
      return;
    }
    if (record.client != nullptr) {
      record.client->InformError("query " + record.query.id +
                                 " lost its provisioning mechanism (" +
                                 status.ToString() +
                                 ") and no alternative is available");
    }
    if (record.assigned.empty()) {
      query_manager_.Remove(record.query.id);
    }
    return;
  }
  const Status s = AssignToFacade(record, *replacement);
  if (!s.ok()) {
    record.failed.insert(*replacement);
    TryFailover(record, failed_kind, status);
    return;
  }
  switch_log_.push_back(SwitchEvent{services_.sim->Now(), record.query.id,
                                    failed_kind, *replacement});
  CLOG_INFO(kModule, "query %s switched %s -> %s", record.query.id.c_str(),
            query::SourceSelName(failed_kind),
            query::SourceSelName(*replacement));
  if (record.client != nullptr) {
    record.client->InformError(
        std::string("provisioning switched from ") +
        query::SourceSelName(failed_kind) + " to " +
        query::SourceSelName(*replacement));
  }
  // Arm the switch-back probe toward the preferred mechanism.
  if (record.preferred == failed_kind) {
    StartRecoveryProbe(record.query.id);
  }
}

void ContextFactory::StartRecoveryProbe(const std::string& query_id) {
  if (recovery_probes_.contains(query_id)) return;
  recovery_probes_[query_id] = std::make_unique<sim::PeriodicTask>(
      *services_.sim, config_.recovery_probe_period,
      [this, query_id] { ProbeRecovery(query_id); });
}

void ContextFactory::ProbeRecovery(const std::string& query_id) {
  QueryRecord* record = query_manager_.Find(query_id);
  if (record == nullptr) {
    recovery_probes_.erase(query_id);
    return;
  }
  const query::SourceSel preferred = record->preferred;
  if (record->assigned.contains(preferred)) {
    recovery_probes_.erase(query_id);
    return;
  }
  // The only probe that needs real work is the BT-GPS one: re-run
  // discovery (this is the 163-292 mW cost Fig. 5 attributes to the
  // switches) and look for the NMEA service.
  if (preferred == query::SourceSel::kIntSensor &&
      (record->query.select_type == vocab::kLocation ||
       record->query.select_type == vocab::kSpeed) &&
      !internal_ref_.HasSourceOfType(record->query.select_type)) {
    if (!bt_ref_.Available()) return;
    bt_ref_.InvalidateDiscoveryCache();
    bt_ref_.Discover(
        SimDuration::zero(),
        [this, query_id](Result<std::vector<net::BtDeviceInfo>> devices) {
          if (!devices.ok() || devices->empty()) return;
          QueryRecord* record = query_manager_.Find(query_id);
          if (record == nullptr) return;
          // Check each device for the GPS service, then switch back.
          const auto device = devices->front();
          bt_ref_.controller()->DiscoverServices(
              device.node, sensors::kGpsServiceName,
              [this, query_id](Result<std::vector<net::ServiceRecord>>
                                   records) {
                if (!records.ok() || records->empty()) return;
                QueryRecord* record = query_manager_.Find(query_id);
                if (record == nullptr) return;
                const query::SourceSel preferred = record->preferred;
                if (record->assigned.contains(preferred)) return;
                // Tear down the stopgap mechanism and switch back.
                for (const query::SourceSel kind : record->assigned) {
                  facades_.at(kind)->Cancel(query_id);
                }
                const auto old = record->assigned;
                record->assigned.clear();
                record->failed.erase(preferred);
                if (AssignToFacade(*record, preferred).ok()) {
                  const query::SourceSel from =
                      old.empty() ? preferred : *old.begin();
                  switch_log_.push_back(SwitchEvent{
                      services_.sim->Now(), query_id, from, preferred});
                  CLOG_INFO(kModule, "query %s switched back to %s",
                            query_id.c_str(),
                            query::SourceSelName(preferred));
                  if (record->client != nullptr) {
                    record->client->InformError(
                        std::string("provisioning restored to ") +
                        query::SourceSelName(preferred));
                  }
                  recovery_probes_.erase(query_id);
                }
              });
        });
    return;
  }
  // Generic probe: switch back as soon as CanServe holds again.
  std::set<query::SourceSel> exclude_all_but_preferred;
  for (const query::SourceSel kind :
       {query::SourceSel::kIntSensor, query::SourceSel::kAdHocNetwork,
        query::SourceSel::kExtInfra}) {
    if (kind != preferred) exclude_all_but_preferred.insert(kind);
  }
  const auto available =
      SelectMechanism(record->query, exclude_all_but_preferred);
  if (!available.ok()) return;
  for (const query::SourceSel kind : record->assigned) {
    facades_.at(kind)->Cancel(query_id);
  }
  const auto old = record->assigned;
  record->assigned.clear();
  record->failed.erase(preferred);
  if (AssignToFacade(*record, preferred).ok()) {
    switch_log_.push_back(SwitchEvent{services_.sim->Now(), query_id,
                                      old.empty() ? preferred : *old.begin(),
                                      preferred});
    recovery_probes_.erase(query_id);
  }
}

bool ContextFactory::EnterDegradedMode(QueryRecord& record,
                                       const Status& cause) {
  if (record.client == nullptr) return false;
  if (record.degraded) return true;
  const std::string id = record.query.id;
  if (!repository_.Latest(record.query.select_type).ok()) {
    return false;  // nothing cached: a stale answer is not possible
  }
  record.degraded = true;
  CLOG_INFO(kModule, "query %s degraded (%s): serving stale repository data",
            id.c_str(), cause.ToString().c_str());
  record.client->InformError("query " + id +
                             " degraded to stale repository data (" +
                             cause.ToString() +
                             "); no live provisioning mechanism");
  if (record.query.mode() == query::InteractionMode::kOnDemand) {
    // One stale answer completes an on-demand round.
    DeliverDegraded(id);
    recovery_probes_.erase(id);
    query_manager_.Remove(id);
    return true;
  }
  SimDuration period = config_.degraded_poll_period;
  if (period <= SimDuration::zero()) {
    period = record.query.every.value_or(std::chrono::seconds{5});
  }
  degraded_tasks_[id] = std::make_unique<sim::PeriodicTask>(
      *services_.sim, period, [this, id] { DeliverDegraded(id); });
  // First stale answer now, not one period from now.
  DeliverDegraded(id);
  recovery_probes_[id] = std::make_unique<sim::PeriodicTask>(
      *services_.sim, config_.recovery_probe_period,
      [this, id] { ProbeDegradedRecovery(id); });
  return true;
}

void ContextFactory::DeliverDegraded(const std::string& query_id) {
  QueryRecord* record = query_manager_.Find(query_id);
  if (record == nullptr || !record->degraded || record->client == nullptr) {
    degraded_tasks_.erase(query_id);
    return;
  }
  // The DURATION clause keeps its meaning while degraded.
  if (record->query.duration.time.has_value() &&
      services_.sim->Now() >=
          record->submitted + *record->query.duration.time) {
    degraded_tasks_.erase(query_id);
    recovery_probes_.erase(query_id);
    query_manager_.Remove(query_id);
    return;
  }
  auto item = repository_.Latest(record->query.select_type);
  if (!item.ok()) return;  // cache expired under us; the probe keeps trying
  item->metadata.staleness_seconds =
      ToSeconds(services_.sim->Now() - item->timestamp);
  ++degraded_deliveries_;
  ++record->items_delivered;
  record->client->ReceiveCxtItem(*item);
}

void ContextFactory::ProbeDegradedRecovery(const std::string& query_id) {
  QueryRecord* record = query_manager_.Find(query_id);
  if (record == nullptr || !record->degraded) {
    recovery_probes_.erase(query_id);
    return;
  }
  // While degraded, any live mechanism beats stale data: reconsider them
  // all, including ones that failed earlier.
  const auto kind = SelectMechanism(record->query, {});
  if (!kind.ok()) return;  // everything still down
  if (!AssignToFacade(*record, *kind).ok()) return;  // next probe retries
  record->degraded = false;
  record->failed.clear();
  degraded_tasks_.erase(query_id);
  // `from` approximates: degraded mode has no SourceSel of its own.
  switch_log_.push_back(
      SwitchEvent{services_.sim->Now(), query_id, record->preferred, *kind});
  CLOG_INFO(kModule, "query %s recovered from degraded mode to %s",
            query_id.c_str(), query::SourceSelName(*kind));
  record->client->InformError(std::string("provisioning restored to ") +
                              query::SourceSelName(*kind) +
                              " after degraded mode");
  recovery_probes_.erase(query_id);  // safe: PeriodicTask survives this
}

bool ContextFactory::IsDegraded(const std::string& query_id) const {
  const QueryRecord* record = query_manager_.Find(query_id);
  return record != nullptr && record->degraded;
}

std::uint64_t ContextFactory::total_retries() const {
  std::uint64_t n = 0;
  for (const auto& [kind, facade] : facades_) {
    n += facade->retries_observed();
  }
  return n;
}

Status ContextFactory::PublishCxtItem(const CxtItem& item, bool publish,
                                      std::string access_key) {
  // "In order to be eligible to publish context items ... the publisher
  // must register and be authenticated."
  if (registered_servers_.empty()) {
    return PermissionDenied(
        "publishCxtItem requires a registered context server "
        "(registerCxtServer)");
  }
  if (!publish) {
    publisher_->Unpublish(item.type);
    return Status::Ok();
  }
  publisher_->Publish(item, std::move(access_key));
  repository_.Store(item);
  return Status::Ok();
}

void ContextFactory::StoreCxtItem(const CxtItem& item,
                                  std::function<void(Status)> done) {
  repository_.Store(item);
  if (!cell_ref_.Available() || services_.default_infra_address.empty()) {
    if (done) done(Unavailable("no infrastructure connectivity"));
    return;  // local-only until connectivity returns
  }
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(infra::ServerOp::kStore));
  w.WriteString(services_.phone->name());
  const auto pos = services_.medium->GetPosition(services_.node);
  w.WriteBool(pos.ok());
  if (pos.ok()) {
    const GeoPoint geo = sensors::ToGeo(*pos);
    w.WriteF64(geo.lat);
    w.WriteF64(geo.lon);
  }
  item.Encode(w);
  if (w.size() < infra::kEventNotificationBytes) {
    w.WritePadding(infra::kEventNotificationBytes - w.size());
  }
  cell_ref_.SendRequest(
      services_.default_infra_address, std::move(w).Take(),
      [done = std::move(done)](Result<std::vector<std::byte>> r) {
        if (done) done(r.ok() ? Status::Ok() : r.status());
      });
}

Status ContextFactory::EnableFusion(const std::string& query_id,
                                    AggregatorConfig config) {
  if (query_manager_.Find(query_id) == nullptr) {
    return NotFound("no active query '" + query_id + "'");
  }
  aggregators_.erase(query_id);
  aggregators_.emplace(std::piecewise_construct,
                       std::forward_as_tuple(query_id),
                       std::forward_as_tuple(*services_.sim, config));
  return Status::Ok();
}

Status ContextFactory::RegisterCxtServer(Client& client) {
  if (registered_servers_.contains(&client)) {
    return AlreadyExists("client already registered");
  }
  registered_servers_.insert(&client);
  return Status::Ok();
}

void ContextFactory::DeregisterCxtServer(Client& client) {
  registered_servers_.erase(&client);
}

void ContextFactory::AddControlPolicy(ContextRule rule) {
  rules_.AddRule(std::move(rule));
  EvaluatePolicies();
}

void ContextFactory::EvaluatePolicies() {
  const auto actions = rules_.Evaluate(monitor_.AsLookup());
  const auto newly_active = [&](RuleAction a) {
    return actions.contains(a) && !active_actions_.contains(a);
  };
  const bool power = newly_active(RuleAction::kReducePower);
  const bool memory = newly_active(RuleAction::kReduceMemory);
  const bool load = newly_active(RuleAction::kReduceLoad);
  active_actions_ = actions;
  if (power) EnforceReducePower();
  if (memory) EnforceReduceMemory();
  if (load) EnforceReduceLoad();
}

void ContextFactory::EnforceReducePower() {
  // "the activation of the reducePower action can cause the suspension or
  // termination of high energy-consuming queries (e.g., those using the
  // 2G/3GReference)".
  CLOG_INFO(kModule, "reducePower active: suspending extInfra queries");
  facades_.at(query::SourceSel::kExtInfra)
      ->StopAll(ResourceExhausted("reducePower policy suspended the query"));
}

void ContextFactory::EnforceReduceMemory() {
  const std::size_t target =
      std::max<std::size_t>(1, repository_.capacity_per_type() / 2);
  CLOG_INFO(kModule, "reduceMemory active: repository rings -> %zu", target);
  repository_.Shrink(target);
}

void ContextFactory::EnforceReduceLoad() {
  // Keep at most reduce_load_provider_cap providers: suspend the rest,
  // preferring to keep the cheap mechanisms.
  std::size_t active = active_provider_count();
  if (active <= config_.reduce_load_provider_cap) return;
  CLOG_INFO(kModule, "reduceLoad active: %zu providers > cap %zu", active,
            config_.reduce_load_provider_cap);
  for (const query::SourceSel kind :
       {query::SourceSel::kExtInfra, query::SourceSel::kAdHocNetwork,
        query::SourceSel::kIntSensor}) {
    if (active <= config_.reduce_load_provider_cap) break;
    Facade& f = *facades_.at(kind);
    const std::size_t here = f.active_provider_count();
    if (here == 0) continue;
    f.StopAll(ResourceExhausted("reduceLoad policy suspended the query"));
    active -= here;
  }
}

}  // namespace contory::core
