#include "core/context_factory.hpp"

#include "common/logging.hpp"
#include "core/providers/infra_provider.hpp"
#include "core/providers/local_provider.hpp"
#include "infra/context_server.hpp"
#include "infra/event_broker.hpp"
#include "obs/observability.hpp"
#include "sensors/gps.hpp"

namespace contory::core {
namespace {
constexpr const char* kModule = "factory";

DeviceServices Validated(DeviceServices services) {
  services.CheckRequired();
  return services;
}

}  // namespace

ContextFactory::ContextFactory(DeviceServices services,
                               ContextFactoryConfig config)
    : services_(Validated(std::move(services))),
      config_(config),
      internal_ref_(),
      bt_ref_(*services_.sim, services_.bt),
      wifi_ref_(services_.wifi, services_.sm),
      cell_ref_(services_.modem),
      monitor_(*services_.sim, *services_.phone, config_.resources),
      access_(config_.access),
      repository_(*services_.sim, config_.repository),
      policy_(rules_, monitor_, repository_, facades_,
              {.reduce_load_provider_cap = config_.reduce_load_provider_cap}),
      table_(*services_.sim,
             ShardedQueryTableOptions{config_.table_shards,
                                      config_.completion_log_capacity}),
      planner_(PlannerEnv{&internal_ref_, &bt_ref_, &wifi_ref_, &cell_ref_,
                          &services_.default_infra_address,
                          &policy_.active_actions()}),
      governor_(*services_.sim, repository_, config_.overload),
      admission_(*services_.sim, access_, table_, &governor_),
      router_(*services_.sim, table_, repository_),
      coordinator_(
          *services_.sim,
          FailoverConfig{config_.recovery_probe_period,
                         config_.enable_degraded_mode,
                         config_.degraded_poll_period},
          table_, planner_, repository_, router_, internal_ref_, bt_ref_,
          FailoverCoordinator::Hooks{
              [this](QueryRecord& record, query::SourceSel kind) {
                return AssignToFacade(record, kind);
              },
              [this](const std::string& query_id, query::SourceSel kind) {
                facades_.at(kind)->Cancel(query_id);
              }}) {
  // Tracer spans attribute energy to the owning device; the phone is
  // owned by the caller (testbed::World) and outlives this factory.
  table_.SetEnergyProbe([phone = services_.phone] {
    return phone->energy().TotalEnergyJoules();
  });

  publisher_ = std::make_unique<CxtPublisher>(bt_ref_, wifi_ref_);
  WireReferences();
  BuildFacades();

  // Join the SM overlay and expose the home tag SM-FINDERs route back to.
  if (services_.sm != nullptr) {
    wifi_ref_.SetParticipating(true);
    services_.sm->tags().Upsert(HomeTagName(services_.node), "1");
    RegisterFinderBrick(*services_.sm);
  }

  // The middleware's own runtime draw (+1.64 mW, Sec. 6.1).
  services_.phone->SetContoryRunning(true);

  policy_task_ = std::make_unique<sim::PeriodicTask>(
      *services_.sim, config_.policy_period, [this] { policy_.Evaluate(); });
}

ContextFactory::~ContextFactory() {
  *life_ = false;
  services_.phone->SetContoryRunning(false);
}

void ContextFactory::WireReferences() {
  monitor_.Attach(internal_ref_);
  monitor_.Attach(bt_ref_);
  monitor_.Attach(wifi_ref_);
  monitor_.Attach(cell_ref_);
  monitor_.SetMemoryGauge([this] { return repository_.size(); });
  monitor_.SetQueryGauge([this] { return table_.active_count(); });
  monitor_.SetProviderGauge([this] { return active_provider_count(); });
}

std::unique_ptr<CxtProvider> ContextFactory::MakeProvider(
    query::SourceSel kind, query::CxtQuery q,
    CxtProvider::Callbacks callbacks) {
  QueryRecord* record = table_.Find(q.id);
  Client* client = record != nullptr ? record->client : nullptr;
  switch (kind) {
    case query::SourceSel::kIntSensor:
      // No retry policy: a vanished sensor is not transient, and an
      // immediate escalation preserves the Fig. 5 failover timing.
      return std::make_unique<LocalCxtProvider>(
          *services_.sim, std::move(q), std::move(callbacks), internal_ref_,
          bt_ref_, access_, client);
    case query::SourceSel::kExtInfra: {
      std::string address = services_.default_infra_address;
      for (const auto& src : q.from.sources) {
        if (src.kind == query::SourceSel::kExtInfra && !src.address.empty()) {
          address = src.address;
        }
      }
      auto provider = std::make_unique<InfraCxtProvider>(
          *services_.sim, std::move(q), std::move(callbacks), cell_ref_,
          std::move(address));
      provider->ConfigureRetry(config_.retry);
      return provider;
    }
    case query::SourceSel::kAdHocNetwork: {
      const AdHocTransport transport =
          policy_.active_actions().contains(RuleAction::kReducePower)
              ? AdHocTransport::kForceBt
              : AdHocTransport::kAuto;
      auto provider = std::make_unique<AdHocCxtProvider>(
          *services_.sim, std::move(q), std::move(callbacks), bt_ref_,
          wifi_ref_, access_, client, transport,
          config_.adhoc_finder_retries);
      provider->ConfigureRetry(config_.retry);
      // Hand the provider its query's provision span so the WiFi
      // transport's SM-FINDER hop chain nests inside the trace tree. A
      // merged cluster carries its first query's id, so the whole
      // cluster's hops attribute to that query's tree.
      COBS(if (record != nullptr) {
        std::uint64_t parent =
            EnsureProvisionSpan(*record, query::SourceSel::kAdHocNetwork);
        if (parent == 0) parent = record->obs.root;
        provider->SetTraceSpan(parent);
      });
      return provider;
    }
    case query::SourceSel::kAuto:
      break;
  }
  throw std::logic_error("MakeProvider: unresolved source kind");
}

void ContextFactory::BuildFacades() {
  for (const query::SourceSel kind :
       {query::SourceSel::kIntSensor, query::SourceSel::kExtInfra,
        query::SourceSel::kAdHocNetwork}) {
    query::MergePolicy policy = config_.merge_policy;
    if (!config_.enable_query_merging) {
      policy.threshold = -1.0;  // nothing merges
    }
    auto facade = std::make_unique<Facade>(
        *services_.sim, kind,
        [this, kind](query::CxtQuery q, CxtProvider::Callbacks callbacks) {
          return MakeProvider(kind, std::move(q), std::move(callbacks));
        },
        policy);
    facade->SetDelivery(
        [this, kind](const std::string& query_id, const CxtItem& item) {
          router_.OnFacadeDelivery(query_id, item, kind);
        });
    facade->SetFinished(
        [this, kind](const std::string& query_id, const Status& status) {
          coordinator_.OnFacadeFinished(kind, query_id, status);
        });
    facades_.emplace(kind, std::move(facade));
  }
}

std::set<query::SourceSel> ContextFactory::CurrentMechanisms(
    const std::string& query_id) const {
  const QueryRecord* record = table_.Find(query_id);
  return record != nullptr ? record->assigned : std::set<query::SourceSel>{};
}

Result<std::string> ContextFactory::ProcessCxtQuery(query::CxtQuery query,
                                                    Client& client) {
  const AdmitOutcome outcome = AdmitAndPlan(std::move(query), client, {});
  if (!outcome.status.ok()) {
    // Planning rejections leave an ADMITTED record behind; retire it.
    if (outcome.qid != kInvalidQueryId) table_.FinishById(outcome.qid);
    return outcome.status;
  }
  if (outcome.degrade) return DegradeAtAdmission(outcome);
  return ActivateQuery(outcome.qid, outcome.note);
}

ContextFactory::AdmitOutcome ContextFactory::AdmitAndPlan(
    query::CxtQuery&& query, Client& client,
    const QueryTable::AdmitOptions& admit_options,
    const OverloadGovernor::Decision* pregate) {
  // Stages 0–1: overload gate and admission (validation, access
  // control, policy gates).
  OverloadGovernor::Decision decision;
  Result<QueryId> admitted =
      admission_.Admit(query, client, policy_.active_actions(),
                       admit_options, pregate, &decision);
  if (!admitted.ok()) return {kInvalidQueryId, admitted.status()};
  AdmitOutcome outcome;
  outcome.qid = *admitted;
  outcome.note = decision.note;
  if (decision.outcome == OverloadGovernor::Decision::Outcome::kDegrade) {
    // Stale-answer-first: the record is in the table but never plans or
    // activates; the degraded-mode machinery serves it.
    outcome.degrade = true;
    outcome.degrade_cause = decision.status;
    return outcome;
  }
  QueryRecord* record = table_.FindById(outcome.qid);

  // Stage 2: planning (FROM clause -> facade set + failover order).
  auto plan = planner_.Plan(record->query);
  if (!plan.ok()) {
    outcome.status = plan.status();
    return outcome;
  }
  record->plan = *std::move(plan);
  return outcome;
}

Result<std::string> ContextFactory::DegradeAtAdmission(
    const AdmitOutcome& outcome) {
  QueryRecord* record = table_.FindById(outcome.qid);
  if (record == nullptr) {
    return NotFound("query vanished before degraded activation");
  }
  COBS({
    table_.EnsureRootSpan(*record);
    if (record->obs.root != 0 && outcome.note != nullptr) {
      obs::Observability::tracer().AddNote(record->obs.root, outcome.note);
    }
  });
  const std::string id = record->query.id;
  if (!coordinator_.DegradeAtAdmission(*record, outcome.degrade_cause)) {
    // The cached entry aged out (or degraded mode is off) between the
    // gate and activation; fall back to the plain shed refusal.
    table_.FinishById(outcome.qid);
    return outcome.degrade_cause;
  }
  // The query was accepted and is being served stale (an on-demand
  // round has already finished); its id is the caller's handle.
  return id;
}

Result<std::string> ContextFactory::ActivateQuery(QueryId qid,
                                                  const char* note) {
  QueryRecord* record = table_.FindById(qid);
  if (record == nullptr) {
    return NotFound("query vanished before activation");
  }
  // A worker-admitted record carries an armed-but-unopened root span;
  // materialize it before any child span or delivery can reference it.
  COBS({
    table_.EnsureRootSpan(*record);
    if (record->obs.root != 0 && note != nullptr) {
      obs::Observability::tracer().AddNote(record->obs.root, note);
    }
  });
  const std::string id = record->query.id;

  // Stage 3: facade assignment. A facade Submit may deliver
  // synchronously and the client may finish the query from inside that
  // delivery (reentrant cancel), invalidating `record` — iterate over a
  // snapshot of the plan and re-resolve the record after every call.
  const std::vector<query::SourceSel> initial(record->plan.initial.begin(),
                                              record->plan.initial.end());
  Status last;
  std::size_t assigned = 0;
  for (const query::SourceSel kind : initial) {
    const Status s = AssignToFacade(*record, kind);
    record = table_.FindById(qid);
    if (record == nullptr) return id;  // finished from inside the delivery
    if (s.ok()) {
      ++assigned;
    } else {
      last = s;
    }
  }
  if (assigned == 0) {
    table_.FinishById(qid);
    return last;
  }
  table_.Transition(*record, QueryState::kActive);
  CLOG_INFO(kModule, "query %s (%s) assigned to %zu facade(s)", id.c_str(),
            record->query.select_type.c_str(), assigned);
  return id;
}

std::vector<Result<std::string>> ContextFactory::ProcessCxtQueryBatch(
    std::vector<query::CxtQuery> queries, Client& client,
    const BatchOptions& options) {
  const std::size_t n = queries.size();
  std::vector<Result<std::string>> results;
  results.reserve(n);

  if (options.workers == 0) {
    for (auto& q : queries) {
      results.push_back(ProcessCxtQuery(std::move(q), client));
    }
    return results;
  }

  // Worker mode. Everything the workers touch must be stable for the
  // whole batch: ids come from the (unsynchronized, simulation-thread)
  // generator up front, and the admission snapshot — the clock and the
  // device energy ledger — is taken once, so every query in the batch
  // shares one submission instant, exactly as if the batch were one
  // simulation event.
  for (auto& q : queries) {
    if (q.id.empty()) q.id = services_.sim->ids().NextId("q");
  }
  QueryTable::AdmitOptions admit_options;
  admit_options.defer_obs = true;
  admit_options.now = services_.sim->Now();
  admit_options.energy_now_j = services_.phone->energy().TotalEnergyJoules();

  // Overload pre-gating: the governor's token buckets, hysteresis state
  // and the repository are simulation-thread-only, so every gate
  // decision is made here, in submission order, before the fan-out —
  // the same trick as the id pre-assignment above. The occupancy each
  // decision sees is projected forward the way the deterministic loop
  // would observe it: an admitted query occupies a record; a degraded
  // periodic record stays; an on-demand degrade finishes immediately.
  std::vector<OverloadGovernor::Decision> gates(n);
  if (governor_.Armed(policy_.active_actions())) {
    std::size_t projected = table_.active_count();
    for (std::size_t i = 0; i < n; ++i) {
      gates[i] = governor_.Decide(queries[i], client,
                                  policy_.active_actions(), projected);
      using Outcome = OverloadGovernor::Decision::Outcome;
      if (gates[i].outcome == Outcome::kAdmit) {
        ++projected;
      } else if (gates[i].outcome == Outcome::kDegrade &&
                 queries[i].mode() != query::InteractionMode::kOnDemand) {
        ++projected;
      }
    }
  }

  results.assign(n, Status{StatusCode::kInternal, "batch slot unprocessed"});
  std::vector<AdmitOutcome> outcomes(n);
  PipelineExecutor executor(
      PipelineExecutorOptions{.workers = options.workers});
  executor.Run(
      n,
      [&](std::size_t i) {
        outcomes[i] = AdmitAndPlan(std::move(queries[i]), client,
                                   admit_options, &gates[i]);
        // Only indices with a table record need simulation-thread work
        // (activation, or Finish after a planning rejection).
        return outcomes[i].qid != kInvalidQueryId;
      },
      [&](std::size_t i) {
        const AdmitOutcome& outcome = outcomes[i];
        if (!outcome.status.ok()) {
          table_.FinishById(outcome.qid);
          results[i] = outcome.status;
          return;
        }
        if (outcome.degrade) {
          results[i] = DegradeAtAdmission(outcome);
          return;
        }
        results[i] = ActivateQuery(outcome.qid, outcome.note);
      });
  COBS(obs::Observability::metrics()
           .GetGauge("executor_ring_high_watermark")
           .Set(static_cast<double>(executor.ring_high_watermark())));
  for (std::size_t i = 0; i < n; ++i) {
    if (outcomes[i].qid == kInvalidQueryId) results[i] = outcomes[i].status;
  }
  return results;
}

Status ContextFactory::AssignToFacade(QueryRecord& record,
                                      query::SourceSel kind) {
  bool armed = false;
  COBS({
    // One provision window per mechanism the query is ever assigned to;
    // re-assignment after failover opens a fresh window. Assignment sits
    // on the submit hot path, so only the window's start and an energy
    // sample are recorded here ("armed"); EnsureProvisionSpan()
    // materializes the tracer span at the stage's first real event.
    // Arming happens before Submit because providers may deliver their
    // first item synchronously from inside it, and that delivery must
    // land on the span with the assignment-time start.
    const auto i = static_cast<std::size_t>(kind);
    QueryRecord::ObsSpans& spans = record.obs;
    if (spans.provision[i] == 0 && !spans.provision_pending[i]) {
      spans.provision_pending[i] = true;
      spans.provision_start[i] = services_.sim->Now();
      spans.provision_energy0[i] =
          services_.phone->energy().TotalEnergyJoules();
      armed = true;
    }
  });
  const QueryId qid = record.qid;
  // Providers arm their DURATION timer from "now", but the clause is
  // anchored at submission — a failover re-assignment must hand the
  // facade only the remaining window or the clock restarts.
  query::CxtQuery to_submit = record.query;
  if (to_submit.duration.time.has_value()) {
    const SimDuration elapsed = services_.sim->Now() - record.submitted;
    if (elapsed > SimDuration::zero()) {
      *to_submit.duration.time =
          *to_submit.duration.time <= elapsed
              ? SimDuration::zero()
              : *to_submit.duration.time - elapsed;
    }
  }
  const Status s = facades_.at(kind)->Submit(to_submit);
  // Submit can deliver synchronously, and the client may cancel (or
  // otherwise finish) the query from inside that delivery — which
  // erases the record. Re-resolve before touching it again.
  QueryRecord* live = table_.FindById(qid);
  if (live == nullptr) return s;
  if (s.ok()) {
    live->assigned.insert(kind);
  } else if (armed) {
    COBS({
      const std::uint64_t span = EnsureProvisionSpan(*live, kind);
      if (span != 0) {
        obs::Observability::tracer().EndStage(span, services_.sim->Now(),
                                              "not-assigned");
      }
      const auto i = static_cast<std::size_t>(kind);
      live->obs.provision[i] = 0;
      live->obs.provision_pending[i] = false;
    });
  }
  return s;
}

void ContextFactory::CancelCxtQuery(const std::string& query_id) {
  QueryRecord* record = table_.Find(query_id);
  if (record == nullptr) return;
  COBS({
    table_.EnsureRootSpan(*record);
    obs::Observability::tracer().AddNote(record->obs.root, "cancelled");
    static obs::Counter& cancelled =
        obs::Observability::metrics().GetCounter("queries_cancelled_total");
    cancelled.Inc();
  });
  for (const query::SourceSel kind : record->assigned) {
    facades_.at(kind)->Cancel(query_id);
  }
  coordinator_.DropQuery(query_id);
  router_.OnQueryCancelled(query_id);
  table_.Finish(query_id);
}

bool ContextFactory::IsDegraded(const std::string& query_id) const {
  const QueryRecord* record = table_.Find(query_id);
  return record != nullptr && record->degraded();
}

std::uint64_t ContextFactory::total_retries() const {
  std::uint64_t n = 0;
  for (const auto& [kind, facade] : facades_) {
    n += facade->retries_observed();
  }
  return n;
}

Status ContextFactory::PublishCxtItem(const CxtItem& item, bool publish,
                                      std::string access_key) {
  // "In order to be eligible to publish context items ... the publisher
  // must register and be authenticated."
  if (registered_servers_.empty()) {
    return PermissionDenied(
        "publishCxtItem requires a registered context server "
        "(registerCxtServer)");
  }
  if (!publish) {
    publisher_->Unpublish(item.type);
    return Status::Ok();
  }
  publisher_->Publish(item, std::move(access_key));
  repository_.Store(item);
  return Status::Ok();
}

void ContextFactory::StoreCxtItem(const CxtItem& item,
                                  std::function<void(Status)> done) {
  repository_.Store(item);
  if (!cell_ref_.Available() || services_.default_infra_address.empty()) {
    if (done) done(Unavailable("no infrastructure connectivity"));
    return;  // local-only until connectivity returns
  }
  const auto pos = services_.medium->GetPosition(services_.node);
  const SimTime sent = services_.sim->Now();
  cell_ref_.SendRequest(
      services_.default_infra_address,
      infra::EncodeStoreRequest(
          services_.phone->name(),
          pos.ok() ? std::optional<GeoPoint>{sensors::ToGeo(*pos)}
                   : std::nullopt,
          item),
      [this, life = life_, sent,
       done = std::move(done)](Result<std::vector<std::byte>> r) {
        // Table 1's publishCxtItem row for the infrastructure transport:
        // the round trip from store request to server acknowledgement.
        COBS({
          if (*life && r.ok()) {
            obs::Observability::metrics()
                .GetHistogram("op_latency_ms",
                              {{"op", "publishCxtItem"},
                               {"mechanism", "extInfra"},
                               {"transport", "cellular"}})
                .Observe(ToMillis(services_.sim->Now() - sent));
          }
        });
        if (done) done(r.ok() ? Status::Ok() : r.status());
      });
}

Status ContextFactory::EnableFusion(const std::string& query_id,
                                    AggregatorConfig config) {
  return router_.EnableFusion(query_id, config);
}

Status ContextFactory::RegisterCxtServer(Client& client) {
  if (registered_servers_.contains(&client)) {
    return AlreadyExists("client already registered");
  }
  registered_servers_.insert(&client);
  return Status::Ok();
}

void ContextFactory::DeregisterCxtServer(Client& client) {
  registered_servers_.erase(&client);
}

void ContextFactory::AddControlPolicy(ContextRule rule) {
  rules_.AddRule(std::move(rule));
  policy_.Evaluate();
}

}  // namespace contory::core
