#include "core/publisher.hpp"

#include "common/logging.hpp"
#include "obs/clock.hpp"
#include "obs/observability.hpp"

namespace contory::core {
namespace {

/// Table 1's publishCxtItem rows for the ad hoc transports. The publisher
/// has no Simulation reference, so this is the obs::Clock use case: time
/// comes from the process-wide installed source (skipped when none is).
void ObservePublishLatency(SimTime start, const char* transport) {
  COBS({
    if (obs::Clock::installed()) {
      obs::Observability::metrics()
          .GetHistogram("op_latency_ms", {{"op", "publishCxtItem"},
                                          {"mechanism", "adHocNetwork"},
                                          {"transport", transport}})
          .Observe(ToMillis(obs::Clock::Now() - start));
    }
  });
}

}  // namespace

std::string CxtServiceName(const std::string& type) {
  return "contory.cxt." + type;
}

std::vector<std::byte> BuildCxtGetRequest(const std::string& type,
                                          const std::string& key) {
  ByteWriter w;
  w.WriteU8(kCxtGetOp);
  w.WriteString(type);
  w.WriteString(key);
  return std::move(w).Take();
}

Result<CxtGetRequest> ParseCxtGetRequest(
    const std::vector<std::byte>& frame) {
  ByteReader r{frame};
  const auto op = r.ReadU8();
  if (!op.ok()) return op.status();
  if (*op != kCxtGetOp) return InvalidArgument("not a CXTGET frame");
  CxtGetRequest req;
  auto type = r.ReadString();
  if (!type.ok()) return type.status();
  req.type = *std::move(type);
  auto key = r.ReadString();
  if (!key.ok()) return key.status();
  req.key = *std::move(key);
  return req;
}

std::vector<std::byte> BuildCxtGetResponse(const Result<CxtItem>& item) {
  ByteWriter w;
  w.WriteU8(kCxtGetRespOp);
  w.WriteBool(item.ok());
  if (item.ok()) item->Encode(w);
  return std::move(w).Take();
}

Result<CxtItem> ParseCxtGetResponse(const std::vector<std::byte>& frame) {
  ByteReader r{frame};
  const auto op = r.ReadU8();
  if (!op.ok()) return op.status();
  if (*op != kCxtGetRespOp) return InvalidArgument("not a CXTGET response");
  const auto ok = r.ReadBool();
  if (!ok.ok()) return ok.status();
  if (!*ok) return NotFound("peer has no such published item");
  return CxtItem::Deserialize(r);
}

CxtPublisher::CxtPublisher(BTReference& bt, WiFiReference& wifi)
    : bt_(bt), wifi_(wifi) {
  bt_listener_ = bt_.AddDataListener(
      [this](net::BtLinkId link, net::NodeId,
             const std::vector<std::byte>& frame) { OnBtData(link, frame); });
}

CxtPublisher::~CxtPublisher() { bt_.RemoveDataListener(bt_listener_); }

void CxtPublisher::OnBtData(net::BtLinkId link,
                            const std::vector<std::byte>& frame) {
  const auto request = ParseCxtGetRequest(frame);
  if (!request.ok()) return;  // not for us (NMEA, responses, ...)
  if (bt_.controller() == nullptr) return;
  bt_.controller()->Send(link,
                         BuildCxtGetResponse(CurrentItem(request->type,
                                                         request->key)));
}

Result<CxtItem> CxtPublisher::CurrentItem(const std::string& type,
                                          const std::string& key) const {
  const auto it = current_.find(type);
  if (it == current_.end()) {
    return NotFound("no published item of type '" + type + "'");
  }
  if (!it->second.access_key.empty() && it->second.access_key != key) {
    return PermissionDenied("item '" + type + "' requires a key");
  }
  return it->second.item;
}

void CxtPublisher::Publish(const CxtItem& item, std::string access_key,
                           std::function<void(Status)> done) {
  bool any_channel = false;
  const SimTime pub_start = obs::Clock::Now();
  current_[item.type] = Publication{item, access_key};

  // WiFi/SM tag: cheap upsert — "simply creating a new SM tag and storing
  // its name and value in the TagSpace hashtable" (Table 1: 0.130 ms).
  if (wifi_.Available()) {
    any_channel = true;
    wifi_.PublishTag(item.type, ToHex(item.Serialize()), item.lifetime,
                     access_key);
    wifi_types_[item.type] = !access_key.empty();
    if (!bt_.Available()) {
      // Completion after the measured tag-creation cost — charged and
      // timed whether or not the caller asked for the acknowledgement.
      sm::SmRuntime* rt = wifi_.sm();
      auto& phone = rt->wifi().phone();
      phone.ChargeCpu(phone.profile().sm_tag_publish_cost);
      rt->sim().ScheduleAfter(phone.profile().sm_tag_publish_cost,
                              [pub_start, done = std::move(done)] {
                                ObservePublishLatency(pub_start, "wifi");
                                if (done) done(Status::Ok());
                              });
      return;
    }
  }

  // BT service record: first publication registers (~140 ms); later
  // publications update the DataElement in place.
  if (bt_.Available()) {
    std::string service = CxtServiceName(item.type);
    if (!access_key.empty()) service += ".locked";
    const auto handle_it = bt_handles_.find(item.type);
    if (handle_it != bt_handles_.end()) {
      const Status s = bt_.controller()->UpdateService(handle_it->second,
                                                       item.Serialize());
      if (s.ok()) ObservePublishLatency(pub_start, "bt");
      if (done) done(s);
      return;
    }
    bt_.controller()->RegisterService(
        {std::move(service), item.Serialize()},
        [this, type = item.type, pub_start,
         done = std::move(done)](Result<net::ServiceHandle> handle) {
          if (!handle.ok()) {
            if (done) done(handle.status());
            return;
          }
          bt_handles_[type] = *handle;
          ObservePublishLatency(pub_start, "bt");
          if (done) done(Status::Ok());
        });
    return;
  }

  if (done) {
    done(any_channel ? Status::Ok()
                     : Unavailable("no ad hoc channel available to publish"));
  }
}

void CxtPublisher::Unpublish(const std::string& type) {
  current_.erase(type);
  if (const auto it = bt_handles_.find(type); it != bt_handles_.end()) {
    if (bt_.controller() != nullptr) {
      bt_.controller()->UnregisterService(it->second);
    }
    bt_handles_.erase(it);
  }
  if (wifi_types_.erase(type) > 0) {
    wifi_.RemoveTag(type);
  }
}

bool CxtPublisher::IsPublished(const std::string& type) const {
  return bt_handles_.contains(type) || wifi_types_.contains(type);
}

}  // namespace contory::core
