// ContextFactory (Sec. 4.3, 4.4) — the core of Contory.
//
// "One ContextFactory is instantiated on each device and made accessible
// to multiple applications. Based on the Factory Method design pattern,
// ... the ContextFactory offers an interface to submit context queries,
// but lets Facade components (subclasses) decide which ContextProvider
// components (classes) to instantiate."
//
// Responsibilities implemented here:
//  * the paper's public interface (processCxtQuery, cancelCxtQuery,
//    publishCxtItem, storeCxtItem, registerCxtServer, deregisterCxtServer);
//  * mechanism selection for transparent (FROM-less) queries, "based on
//    the requirements specified in the query's FROM clause, based on
//    sensor availability, and in the respect of the active control
//    policies";
//  * failover: when a provider fails, re-selection excluding the failed
//    mechanism, plus a recovery probe that switches back when the
//    preferred mechanism (e.g. the BT-GPS) reappears — the Fig. 5 cycle;
//  * control-policy enforcement (reducePower / reduceMemory / reduceLoad).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/retry.hpp"
#include "core/access_controller.hpp"
#include "core/client.hpp"
#include "core/device_services.hpp"
#include "core/facade.hpp"
#include "core/providers/adhoc_provider.hpp"
#include "core/providers/aggregator.hpp"
#include "core/publisher.hpp"
#include "core/query_manager.hpp"
#include "core/references/bt_reference.hpp"
#include "core/references/cellular_reference.hpp"
#include "core/references/internal_reference.hpp"
#include "core/references/wifi_reference.hpp"
#include "core/repository.hpp"
#include "core/resources_monitor.hpp"
#include "core/rules.hpp"

namespace contory::core {

struct ContextFactoryConfig {
  query::MergePolicy merge_policy;
  CxtRepositoryConfig repository;
  AccessControllerConfig access;
  ResourcesMonitorConfig resources;
  /// Period of the control-policy evaluation loop.
  SimDuration policy_period = std::chrono::seconds{5};
  /// Recovery-probe interval after a failover (Fig. 5: how soon the
  /// factory notices the GPS is back).
  SimDuration recovery_probe_period = std::chrono::seconds{30};
  /// reduceLoad caps the total provider count at this value.
  std::size_t reduce_load_provider_cap = 2;
  /// On-demand SM-FINDER rounds lost to mobility are relaunched this many
  /// times before the query fails.
  int adhoc_finder_retries = 1;
  /// Disables query merging entirely (ablation benches).
  bool enable_query_merging = true;
  /// Retry/backoff policy providers apply to transient transport failures
  /// (coverage gaps, broker outages, radio flaps) before escalating to
  /// failover. Set max_attempts = 1 to disable retries.
  RetryPolicyConfig retry;
  /// When failover has nowhere left to go, answer from the local
  /// repository with explicit staleness metadata instead of erroring,
  /// probing for recovery in the background.
  bool enable_degraded_mode = true;
  /// Delivery period while degraded; zero means the query's EVERY (or 5 s
  /// when the query names none).
  SimDuration degraded_poll_period = SimDuration::zero();
};

class ContextFactory {
 public:
  ContextFactory(DeviceServices services, ContextFactoryConfig config = {});
  ~ContextFactory();

  ContextFactory(const ContextFactory&) = delete;
  ContextFactory& operator=(const ContextFactory&) = delete;

  // --- The paper's ContextFactory interface (Sec. 4.4) -----------------

  /// Submits a context query on behalf of `client`; returns the assigned
  /// query id. The query's FROM clause (or its absence) drives facade
  /// assignment.
  Result<std::string> ProcessCxtQuery(query::CxtQuery query, Client& client);

  /// Cancels an active query.
  void CancelCxtQuery(const std::string& query_id);

  /// Publishes (or, with publish=false, withdraws) a context item in the
  /// ad hoc network. Requires prior registerCxtServer authentication.
  /// A non-empty `access_key` selects authenticated access mode.
  Status PublishCxtItem(const CxtItem& item, bool publish,
                        std::string access_key = {});

  /// Stores an item locally and in the remote infrastructure repository.
  /// `done` (optional) reports the remote acknowledgement — this is the
  /// paper's extInfra publishCxtItem round trip.
  void StoreCxtItem(const CxtItem& item,
                    std::function<void(Status)> done = {});

  /// Registers a client as an authenticated context server (publisher).
  Status RegisterCxtServer(Client& client);
  void DeregisterCxtServer(Client& client);

  /// Enables result aggregation for an active query — "combining results
  /// collected through different context mechanisms allows applications
  /// to partly relieve the uncertainty of single context sources".
  /// Numeric fusion replaces each delivery with the accuracy-weighted
  /// combination of the recent window.
  Status EnableFusion(const std::string& query_id,
                      AggregatorConfig config = {
                          .strategy = AggregationStrategy::kFuseNumeric});

  // --- Control policies --------------------------------------------------
  void AddControlPolicy(ContextRule rule);
  /// Actions active at the last policy evaluation.
  [[nodiscard]] const std::set<RuleAction>& active_actions() const noexcept {
    return active_actions_;
  }

  // --- Introspection (tests, benches, examples) ------------------------
  [[nodiscard]] QueryManager& queries() noexcept { return query_manager_; }
  [[nodiscard]] ResourcesMonitor& resources() noexcept { return monitor_; }
  [[nodiscard]] AccessController& access() noexcept { return access_; }
  [[nodiscard]] CxtRepository& repository() noexcept { return repository_; }
  [[nodiscard]] CxtPublisher& publisher() noexcept { return *publisher_; }
  [[nodiscard]] InternalReference& internal_reference() noexcept {
    return internal_ref_;
  }
  [[nodiscard]] BTReference& bt_reference() noexcept { return bt_ref_; }
  [[nodiscard]] WiFiReference& wifi_reference() noexcept { return wifi_ref_; }
  [[nodiscard]] CellularReference& cellular_reference() noexcept {
    return cell_ref_;
  }
  [[nodiscard]] Facade& facade(query::SourceSel kind);
  [[nodiscard]] std::size_t active_provider_count() const;

  /// The mechanism currently provisioning `query_id` (diagnostics; the
  /// Fig. 5 bench reads this to timestamp the switches).
  [[nodiscard]] std::set<query::SourceSel> CurrentMechanisms(
      const std::string& query_id) const;

  /// Log of provisioning switches: (time, query id, from, to).
  struct SwitchEvent {
    SimTime at;
    std::string query_id;
    query::SourceSel from;
    query::SourceSel to;
  };
  [[nodiscard]] const std::vector<SwitchEvent>& switch_log() const noexcept {
    return switch_log_;
  }

  /// True while `query_id` is served from the local repository because no
  /// mechanism is live.
  [[nodiscard]] bool IsDegraded(const std::string& query_id) const;
  /// Stale items handed out by degraded mode so far.
  [[nodiscard]] std::uint64_t degraded_deliveries() const noexcept {
    return degraded_deliveries_;
  }
  /// Transient-failure retries across all facades' providers.
  [[nodiscard]] std::uint64_t total_retries() const;

 private:
  void WireReferences();
  void BuildFacades();
  [[nodiscard]] std::unique_ptr<CxtProvider> MakeProvider(
      query::SourceSel kind, query::CxtQuery q,
      CxtProvider::Callbacks callbacks);

  /// Mechanism selection for one query, excluding `excluded` kinds.
  /// "in resource-rich environments, powerful context infrastructures can
  /// provide applications with required context data ... Conversely, in
  /// resource-impoverished environments, devices can rely either on their
  /// own sensors ... or on neighboring devices."
  [[nodiscard]] Result<query::SourceSel> SelectMechanism(
      const query::CxtQuery& q,
      const std::set<query::SourceSel>& excluded) const;

  Status AssignToFacade(QueryRecord& record, query::SourceSel kind);
  void OnDelivery(query::SourceSel kind, const std::string& query_id,
                  const CxtItem& item);
  void OnFinished(query::SourceSel kind, const std::string& query_id,
                  const Status& status);
  void TryFailover(QueryRecord& record, query::SourceSel failed_kind,
                   const Status& status);
  void StartRecoveryProbe(const std::string& query_id);
  void ProbeRecovery(const std::string& query_id);

  /// Degraded mode: serve stale repository data when every mechanism is
  /// down. Returns false when there is nothing cached to serve (the caller
  /// falls back to the hard error path).
  bool EnterDegradedMode(QueryRecord& record, const Status& cause);
  void DeliverDegraded(const std::string& query_id);
  void ProbeDegradedRecovery(const std::string& query_id);

  void EvaluatePolicies();
  void EnforceReducePower();
  void EnforceReduceMemory();
  void EnforceReduceLoad();

  DeviceServices services_;
  ContextFactoryConfig config_;

  InternalReference internal_ref_;
  BTReference bt_ref_;
  WiFiReference wifi_ref_;
  CellularReference cell_ref_;

  ResourcesMonitor monitor_;
  AccessController access_;
  CxtRepository repository_;
  std::unique_ptr<CxtPublisher> publisher_;
  QueryManager query_manager_;
  RulesEngine rules_;

  std::map<query::SourceSel, std::unique_ptr<Facade>> facades_;
  std::set<Client*> registered_servers_;
  std::set<RuleAction> active_actions_;
  std::unique_ptr<sim::PeriodicTask> policy_task_;
  std::map<std::string, std::unique_ptr<sim::PeriodicTask>> recovery_probes_;
  std::map<std::string, std::unique_ptr<sim::PeriodicTask>> degraded_tasks_;
  std::uint64_t degraded_deliveries_ = 0;
  std::vector<SwitchEvent> switch_log_;
  /// Per-query fusion aggregators (EnableFusion-style API could extend
  /// this; pass-through dedup is handled by the QueryManager).
  std::map<std::string, CxtAggregator> aggregators_;
  std::shared_ptr<bool> life_ = std::make_shared<bool>(true);
};

}  // namespace contory::core
