// ContextFactory (Sec. 4.3, 4.4) — the core of Contory.
//
// "One ContextFactory is instantiated on each device and made accessible
// to multiple applications. Based on the Factory Method design pattern,
// ... the ContextFactory offers an interface to submit context queries,
// but lets Facade components (subclasses) decide which ContextProvider
// components (classes) to instantiate."
//
// The factory is a thin composition root over the four-stage query
// lifecycle pipeline (docs/ARCHITECTURE.md):
//   1. Admission        — validation, access control, policy gates
//   2. StrategyPlanner  — FROM clause -> ProvisioningPlan
//   3. Facades          — provider clustering per mechanism
//   4. DeliveryRouter   — dedup, fusion, repository, client queues
// with the FailoverCoordinator reacting to mechanism failures and the
// QueryTable owning every query's lifecycle record. What remains here:
// provider construction (the Factory Method itself), facade wiring,
// the publish/store paths, and control-policy enforcement.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/retry.hpp"
#include "core/access_controller.hpp"
#include "core/client.hpp"
#include "core/device_services.hpp"
#include "core/facade.hpp"
#include "core/pipeline/admission.hpp"
#include "core/pipeline/delivery_router.hpp"
#include "core/pipeline/executor.hpp"
#include "core/pipeline/failover_coordinator.hpp"
#include "core/pipeline/sharded_query_table.hpp"
#include "core/pipeline/strategy_planner.hpp"
#include "core/policy_enforcer.hpp"
#include "core/providers/adhoc_provider.hpp"
#include "core/providers/aggregator.hpp"
#include "core/publisher.hpp"
#include "core/references/bt_reference.hpp"
#include "core/references/cellular_reference.hpp"
#include "core/references/internal_reference.hpp"
#include "core/references/wifi_reference.hpp"
#include "core/repository.hpp"
#include "core/resources_monitor.hpp"
#include "core/rules.hpp"

namespace contory::core {

struct ContextFactoryConfig {
  query::MergePolicy merge_policy;
  CxtRepositoryConfig repository;
  AccessControllerConfig access;
  ResourcesMonitorConfig resources;
  /// Period of the control-policy evaluation loop.
  SimDuration policy_period = std::chrono::seconds{5};
  /// Recovery-probe interval after a failover (Fig. 5: how soon the
  /// factory notices the GPS is back).
  SimDuration recovery_probe_period = std::chrono::seconds{30};
  /// reduceLoad caps the total provider count at this value.
  std::size_t reduce_load_provider_cap = 2;
  /// On-demand SM-FINDER rounds lost to mobility are relaunched this many
  /// times before the query fails.
  int adhoc_finder_retries = 1;
  /// Disables query merging entirely (ablation benches).
  bool enable_query_merging = true;
  /// Retry/backoff policy providers apply to transient transport failures
  /// (coverage gaps, broker outages, radio flaps) before escalating to
  /// failover. Set max_attempts = 1 to disable retries.
  RetryPolicyConfig retry;
  /// When failover has nowhere left to go, answer from the local
  /// repository with explicit staleness metadata instead of erroring,
  /// probing for recovery in the background.
  bool enable_degraded_mode = true;
  /// Delivery period while degraded; zero means the query's EVERY (or 5 s
  /// when the query names none).
  SimDuration degraded_poll_period = SimDuration::zero();
  /// QueryTable shard count (rounded up to a power of two). More shards
  /// spread worker-mode admission inserts; deterministic mode is
  /// insensitive to the value.
  std::size_t table_shards = 16;
  /// Completion-log bound (0 = unbounded; lifecycle-audit tests opt in).
  std::size_t completion_log_capacity = 4096;
  /// Overload protection in front of admission: per-client token
  /// buckets, priority-class load shedding, stale-answer fast path.
  /// Inert by default (no rate, no watermarks); see
  /// docs/ADMISSION.md for tuning.
  OverloadGovernorConfig overload;
};

class ContextFactory {
 public:
  ContextFactory(DeviceServices services, ContextFactoryConfig config = {});
  ~ContextFactory();

  ContextFactory(const ContextFactory&) = delete;
  ContextFactory& operator=(const ContextFactory&) = delete;

  // --- The paper's ContextFactory interface (Sec. 4.4) -----------------

  /// Submits a context query on behalf of `client`; returns the assigned
  /// query id. The query's FROM clause (or its absence) drives facade
  /// assignment.
  Result<std::string> ProcessCxtQuery(query::CxtQuery query, Client& client);

  struct BatchOptions {
    /// 0 = inline on the calling thread, in submission order — the
    /// deterministic mode, equivalent to calling ProcessCxtQuery in a
    /// loop. N > 0 = N admission/planning workers feeding activation
    /// through a lock-free ring (see PipelineExecutor); same final
    /// state, nondeterministic event order, simulation thread only.
    std::size_t workers = 0;
  };

  /// Submits a batch of queries on behalf of one client; returns one
  /// result per query, in input order.
  std::vector<Result<std::string>> ProcessCxtQueryBatch(
      std::vector<query::CxtQuery> queries, Client& client,
      const BatchOptions& options);
  std::vector<Result<std::string>> ProcessCxtQueryBatch(
      std::vector<query::CxtQuery> queries, Client& client) {
    return ProcessCxtQueryBatch(std::move(queries), client, BatchOptions());
  }

  /// Cancels an active query.
  void CancelCxtQuery(const std::string& query_id);

  /// Publishes (or, with publish=false, withdraws) a context item in the
  /// ad hoc network. Requires prior registerCxtServer authentication.
  /// A non-empty `access_key` selects authenticated access mode.
  Status PublishCxtItem(const CxtItem& item, bool publish,
                        std::string access_key = {});

  /// Stores an item locally and in the remote infrastructure repository.
  /// `done` (optional) reports the remote acknowledgement — this is the
  /// paper's extInfra publishCxtItem round trip.
  void StoreCxtItem(const CxtItem& item,
                    std::function<void(Status)> done = {});

  /// Registers a client as an authenticated context server (publisher).
  Status RegisterCxtServer(Client& client);
  void DeregisterCxtServer(Client& client);

  /// Enables result aggregation for an active query — "combining results
  /// collected through different context mechanisms allows applications
  /// to partly relieve the uncertainty of single context sources".
  /// Numeric fusion replaces each delivery with the accuracy-weighted
  /// combination of the recent window.
  Status EnableFusion(const std::string& query_id,
                      AggregatorConfig config = {
                          .strategy = AggregationStrategy::kFuseNumeric});

  // --- Control policies --------------------------------------------------
  void AddControlPolicy(ContextRule rule);
  /// Actions active at the last policy evaluation.
  [[nodiscard]] const std::set<RuleAction>& active_actions() const noexcept {
    return policy_.active_actions();
  }

  // --- Introspection (tests, benches, examples) ------------------------
  [[nodiscard]] QueryTable& queries() noexcept { return table_; }
  [[nodiscard]] const QueryTable& queries() const noexcept { return table_; }
  [[nodiscard]] ResourcesMonitor& resources() noexcept { return monitor_; }
  [[nodiscard]] AccessController& access() noexcept { return access_; }
  [[nodiscard]] CxtRepository& repository() noexcept { return repository_; }
  [[nodiscard]] CxtPublisher& publisher() noexcept { return *publisher_; }
  [[nodiscard]] DeliveryRouter& router() noexcept { return router_; }
  [[nodiscard]] FailoverCoordinator& failover() noexcept {
    return coordinator_;
  }
  [[nodiscard]] OverloadGovernor& overload() noexcept { return governor_; }
  [[nodiscard]] InternalReference& internal_reference() noexcept {
    return internal_ref_;
  }
  [[nodiscard]] BTReference& bt_reference() noexcept { return bt_ref_; }
  [[nodiscard]] WiFiReference& wifi_reference() noexcept { return wifi_ref_; }
  [[nodiscard]] CellularReference& cellular_reference() noexcept {
    return cell_ref_;
  }
  [[nodiscard]] Facade& facade(query::SourceSel kind) {
    return *facades_.at(kind);
  }
  [[nodiscard]] std::size_t active_provider_count() const {
    std::size_t n = 0;
    for (const auto& [kind, facade] : facades_) {
      n += facade->active_provider_count();
    }
    return n;
  }

  /// The mechanism currently provisioning `query_id` (diagnostics; the
  /// Fig. 5 bench reads this to timestamp the switches).
  [[nodiscard]] std::set<query::SourceSel> CurrentMechanisms(
      const std::string& query_id) const;

  /// Log of provisioning switches: (time, query id, from, to).
  using SwitchEvent = core::SwitchEvent;
  [[nodiscard]] const std::vector<SwitchEvent>& switch_log() const noexcept {
    return coordinator_.switch_log();
  }

  /// True while `query_id` is served from the local repository because no
  /// mechanism is live.
  [[nodiscard]] bool IsDegraded(const std::string& query_id) const;
  /// Stale items handed out by degraded mode so far.
  [[nodiscard]] std::uint64_t degraded_deliveries() const noexcept {
    return coordinator_.degraded_deliveries();
  }
  /// Transient-failure retries across all facades' providers.
  [[nodiscard]] std::uint64_t total_retries() const;

 private:
  void WireReferences();
  void BuildFacades();
  [[nodiscard]] std::unique_ptr<CxtProvider> MakeProvider(
      query::SourceSel kind, query::CxtQuery q,
      CxtProvider::Callbacks callbacks);

  Status AssignToFacade(QueryRecord& record, query::SourceSel kind);

  /// Outcome of the worker-safe front half (admission + planning).
  struct AdmitOutcome {
    /// kInvalidQueryId when admission itself refused (nothing to clean
    /// up); a real id with a non-OK status means the record is in the
    /// table but planning rejected it — the simulation thread must
    /// FinishById it.
    QueryId qid = kInvalidQueryId;
    Status status;
    /// Shed with a warm repository: the record skipped planning and
    /// must go through DegradeAtAdmission instead of ActivateQuery.
    bool degrade = false;
    Status degrade_cause;
    /// Shed-decision annotation for the root span (static string).
    const char* note = nullptr;
  };
  /// Stages 0–2 (overload gate, admission, planning). Thread-safe when
  /// `admit_options.defer_obs` is set, `query.id` is pre-assigned and
  /// the overload decision is supplied via `pregate`. Never calls
  /// Finish.
  AdmitOutcome AdmitAndPlan(query::CxtQuery&& query, Client& client,
                            const QueryTable::AdmitOptions& admit_options,
                            const OverloadGovernor::Decision* pregate =
                                nullptr);
  /// Stages 3–4 for an ADMITTED record: facade assignment + activation
  /// (or Finish when nothing could be assigned). Simulation thread only.
  Result<std::string> ActivateQuery(QueryId qid,
                                    const char* note = nullptr);
  /// Stale-answer-first fast path for a shed-but-warm admission: hands
  /// the ADMITTED record to the degraded-mode machinery. Simulation
  /// thread only.
  Result<std::string> DegradeAtAdmission(const AdmitOutcome& outcome);

  DeviceServices services_;
  ContextFactoryConfig config_;

  InternalReference internal_ref_;
  BTReference bt_ref_;
  WiFiReference wifi_ref_;
  CellularReference cell_ref_;

  ResourcesMonitor monitor_;
  AccessController access_;
  CxtRepository repository_;
  std::unique_ptr<CxtPublisher> publisher_;
  RulesEngine rules_;
  std::map<query::SourceSel, std::unique_ptr<Facade>> facades_;
  PolicyEnforcer policy_;

  // Pipeline stages (construction order matters: the planner reads the
  // enforcer's active-action set; the coordinator wires everything
  // together).
  QueryTable table_;
  StrategyPlanner planner_;
  OverloadGovernor governor_;
  AdmissionController admission_;
  DeliveryRouter router_;
  FailoverCoordinator coordinator_;

  std::set<Client*> registered_servers_;
  std::unique_ptr<sim::PeriodicTask> policy_task_;
  std::shared_ptr<bool> life_ = std::make_shared<bool>(true);
};

}  // namespace contory::core
