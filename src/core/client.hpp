// The application-facing Client interface (Sec. 4.4).
//
// "To interact with Contory, an application needs to implement a Client
// interface and implements the following methods: receiveCxtItem(...) in
// order to handle the reception of collected context items;
// informError(String msg) to be called by several Contory modules in case
// of malfunctioning or failure; makeDecision(String msg) to be invoked by
// the AccessController to grant or block the interaction with external
// entities."
#pragma once

#include <string>
#include <vector>

#include "core/model/cxt_item.hpp"

namespace contory::core {

class Client {
 public:
  virtual ~Client() = default;

  /// Handles a context item collected for one of this client's queries.
  virtual void ReceiveCxtItem(const CxtItem& item) = 0;

  /// Batch delivery: the DeliveryRouter hands over everything queued for
  /// this client in one call (one virtual dispatch per drain instead of
  /// per item — the difference is real at 1M-query scale). The default
  /// forwards item-by-item, so existing clients keep working unchanged.
  /// Items in a handed-over batch are the client's: cancelling a query
  /// from inside the callback purges only items still queued in the
  /// router, not the remainder of this batch.
  virtual void ReceiveCxtItems(const std::vector<CxtItem>& items) {
    for (const CxtItem& item : items) ReceiveCxtItem(item);
  }

  /// Notified of malfunction or failure affecting this client's queries
  /// (e.g. "sensor lost; switched to adHocNetwork provisioning").
  virtual void InformError(const std::string& msg) = 0;

  /// Asked by the AccessController (high-security mode) whether to admit
  /// an unknown context source. Return true to admit.
  virtual bool MakeDecision(const std::string& msg) = 0;
};

/// Convenience client assembling items into a vector; handy in tests,
/// examples, and benches.
class CollectingClient : public Client {
 public:
  void ReceiveCxtItem(const CxtItem& item) override {
    items.push_back(item);
  }
  void InformError(const std::string& msg) override {
    errors.push_back(msg);
  }
  bool MakeDecision(const std::string&) override { return admit_all; }

  std::vector<CxtItem> items;
  std::vector<std::string> errors;
  bool admit_all = true;
};

}  // namespace contory::core
