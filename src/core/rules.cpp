#include "core/rules.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace contory::core {

const char* RuleOpName(RuleOp op) noexcept {
  switch (op) {
    case RuleOp::kEqual: return "equal";
    case RuleOp::kNotEqual: return "notEqual";
    case RuleOp::kMoreThan: return "moreThan";
    case RuleOp::kLessThan: return "lessThan";
  }
  return "?";
}

const char* RuleActionName(RuleAction a) noexcept {
  switch (a) {
    case RuleAction::kReducePower: return "reducePower";
    case RuleAction::kReduceMemory: return "reduceMemory";
    case RuleAction::kReduceLoad: return "reduceLoad";
  }
  return "?";
}

Result<RuleOp> ParseRuleOp(const std::string& word) {
  if (word == "equal") return RuleOp::kEqual;
  if (word == "notEqual") return RuleOp::kNotEqual;
  if (word == "moreThan") return RuleOp::kMoreThan;
  if (word == "lessThan") return RuleOp::kLessThan;
  return InvalidArgument("unknown rule operator '" + word + "'");
}

Result<RuleAction> ParseRuleAction(const std::string& word) {
  if (word == "reducePower") return RuleAction::kReducePower;
  if (word == "reduceMemory") return RuleAction::kReduceMemory;
  if (word == "reduceLoad") return RuleAction::kReduceLoad;
  return InvalidArgument("unknown rule action '" + word + "'");
}

RuleExpr RuleExpr::Leaf(RuleCondition c) {
  RuleExpr e;
  e.condition = std::move(c);
  return e;
}

RuleExpr RuleExpr::And(std::vector<RuleExpr> children) {
  if (children.size() < 2) {
    throw std::invalid_argument("RuleExpr::And needs >=2 children");
  }
  RuleExpr e;
  e.kind = Kind::kAnd;
  e.children = std::move(children);
  return e;
}

RuleExpr RuleExpr::Or(std::vector<RuleExpr> children) {
  if (children.size() < 2) {
    throw std::invalid_argument("RuleExpr::Or needs >=2 children");
  }
  RuleExpr e;
  e.kind = Kind::kOr;
  e.children = std::move(children);
  return e;
}

namespace {

bool EvalCondition(const RuleCondition& c, const VariableLookup& lookup) {
  const auto value = lookup(c.variable);
  if (!value.ok()) return false;
  switch (c.op) {
    case RuleOp::kEqual:
      return *value == c.value;
    case RuleOp::kNotEqual:
      return !(*value == c.value);
    case RuleOp::kMoreThan: {
      const auto cmp = value->Compare(c.value);
      return cmp.ok() && *cmp > 0;
    }
    case RuleOp::kLessThan: {
      const auto cmp = value->Compare(c.value);
      return cmp.ok() && *cmp < 0;
    }
  }
  return false;
}

}  // namespace

Result<ContextRule> ParseContextRule(std::string_view text) {
  std::istringstream in{std::string{text}};
  std::vector<std::string> words;
  for (std::string word; in >> word;) words.push_back(word);

  std::size_t pos = 0;
  const auto at_end = [&] { return pos >= words.size(); };
  const auto peek = [&]() -> const std::string& { return words[pos]; };

  if (at_end() || peek() != "IF") {
    return InvalidArgument("rule must start with IF");
  }
  ++pos;

  // condition := variable op value; chains joined by AND (tighter) / OR.
  const auto parse_condition = [&]() -> Result<RuleExpr> {
    if (words.size() - pos < 3) {
      return InvalidArgument(
          "incomplete condition (need variable operator value)");
    }
    RuleCondition c;
    c.variable = words[pos++];
    const auto op = ParseRuleOp(words[pos++]);
    if (!op.ok()) return op.status();
    c.op = *op;
    const std::string& value = words[pos++];
    char* end = nullptr;
    const double number = std::strtod(value.c_str(), &end);
    if (end != nullptr && *end == '\0' && end != value.c_str()) {
      c.value = number;
    } else {
      c.value = value;  // bare word: "low", "high", ...
    }
    return RuleExpr::Leaf(std::move(c));
  };

  const auto parse_and_chain = [&]() -> Result<RuleExpr> {
    auto lhs = parse_condition();
    if (!lhs.ok()) return lhs;
    std::vector<RuleExpr> terms{*std::move(lhs)};
    while (!at_end() && peek() == "AND") {
      ++pos;
      auto rhs = parse_condition();
      if (!rhs.ok()) return rhs;
      terms.push_back(*std::move(rhs));
    }
    if (terms.size() == 1) return std::move(terms.front());
    return RuleExpr::And(std::move(terms));
  };

  auto expr = parse_and_chain();
  if (!expr.ok()) return expr.status();
  std::vector<RuleExpr> or_terms{*std::move(expr)};
  while (!at_end() && peek() == "OR") {
    ++pos;
    auto rhs = parse_and_chain();
    if (!rhs.ok()) return rhs.status();
    or_terms.push_back(*std::move(rhs));
  }

  if (at_end() || peek() != "THEN") {
    return InvalidArgument("expected THEN <action>");
  }
  ++pos;
  if (at_end()) return InvalidArgument("missing action after THEN");
  const auto action = ParseRuleAction(words[pos++]);
  if (!action.ok()) return action.status();
  if (!at_end()) {
    return InvalidArgument("unexpected trailing input after action");
  }

  ContextRule rule;
  rule.name = std::string{text};
  rule.condition = or_terms.size() == 1 ? std::move(or_terms.front())
                                        : RuleExpr::Or(std::move(or_terms));
  rule.action = *action;
  return rule;
}

bool RulesEngine::EvalExpr(const RuleExpr& expr, const VariableLookup& lookup) {
  switch (expr.kind) {
    case RuleExpr::Kind::kCondition:
      return EvalCondition(expr.condition, lookup);
    case RuleExpr::Kind::kAnd:
      for (const auto& child : expr.children) {
        if (!EvalExpr(child, lookup)) return false;
      }
      return true;
    case RuleExpr::Kind::kOr:
      for (const auto& child : expr.children) {
        if (EvalExpr(child, lookup)) return true;
      }
      return false;
  }
  return false;
}

void RulesEngine::AddRule(ContextRule rule) {
  rules_.push_back(std::move(rule));
}

std::set<RuleAction> RulesEngine::Evaluate(const VariableLookup& lookup) const {
  std::set<RuleAction> active;
  for (const auto& rule : rules_) {
    if (EvalExpr(rule.condition, lookup)) active.insert(rule.action);
  }
  return active;
}

}  // namespace contory::core
