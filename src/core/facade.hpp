// Facade modules (Sec. 4.3).
//
// "For each of the three types of context provisioning mechanisms
// supported, a corresponding Facade module offers a unified interface for
// managing CxtProviders of that specific type. ... Once the query has
// been assigned to a Facade, in order to avoid redundancy and keep the
// number of active queries minimal, the Facade performs query
// aggregation": merging on submission, post-extraction on delivery.
// "CxtProviders of different Facades can be assigned to the same query,
// but each CxtProvider is assigned only to one (single or merged) query
// at time."
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/providers/provider.hpp"
#include "core/query/merge.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class Facade {
 public:
  /// Builds a provider of this facade's mechanism for a (merged) query.
  using ProviderFactory = std::function<std::unique_ptr<CxtProvider>(
      query::CxtQuery, CxtProvider::Callbacks)>;
  /// Result for one *original* query (post-extraction already applied).
  using Delivery =
      std::function<void(const std::string& query_id, const CxtItem&)>;
  /// One original query finished on this facade: Ok (duration complete)
  /// or a transport failure the factory should react to.
  using Finished = std::function<void(const std::string& query_id,
                                      const Status& status)>;

  Facade(sim::Simulation& sim, query::SourceSel kind,
         ProviderFactory provider_factory, query::MergePolicy policy = {});
  ~Facade();

  Facade(const Facade&) = delete;
  Facade& operator=(const Facade&) = delete;

  [[nodiscard]] query::SourceSel kind() const noexcept { return kind_; }

  void SetDelivery(Delivery delivery) { delivery_ = std::move(delivery); }
  void SetFinished(Finished finished) { finished_ = std::move(finished); }

  /// Assigns a query: merged into an existing compatible cluster (the
  /// provider's parameters are updated) or given a fresh provider.
  Status Submit(query::CxtQuery q);

  /// Cancels one original query. The cluster re-merges the remaining
  /// originals or, when none remain, its provider stops.
  void Cancel(const std::string& query_id);

  /// Stops every provider, reporting `status` per original (used by
  /// control-policy enforcement: reducePower suspends queries).
  void StopAll(const Status& status);

  [[nodiscard]] std::size_t active_provider_count() const;
  [[nodiscard]] std::size_t active_original_count() const;
  /// The merged query texts currently driving providers (diagnostics).
  [[nodiscard]] std::vector<std::string> ActiveMergedIds() const;
  /// Total providers ever created (the merging ablation's key metric).
  [[nodiscard]] std::uint64_t providers_created() const noexcept {
    return providers_created_;
  }
  /// Transient-failure retries performed by this facade's providers,
  /// reaped and live (robustness diagnostics).
  [[nodiscard]] std::uint64_t retries_observed() const;

 private:
  struct Cluster {
    query::CxtQuery merged;
    std::vector<query::CxtQuery> originals;
    std::unique_ptr<CxtProvider> provider;
    bool dead = false;
  };

  void OnProviderDelivery(Cluster& cluster, const CxtItem& item);
  void OnProviderFinished(Cluster& cluster, const Status& status);
  /// Destroys dead clusters outside provider callbacks.
  void ScheduleReap();
  Status StartCluster(Cluster& cluster);

  sim::Simulation& sim_;
  query::SourceSel kind_;
  ProviderFactory provider_factory_;
  query::MergePolicy policy_;
  Delivery delivery_;
  Finished finished_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  /// Non-null while the named cluster's provider is inside Start(); a
  /// finish arriving then is deferred to a fresh event (see
  /// OnProviderFinished).
  Cluster* starting_ = nullptr;
  bool reap_scheduled_ = false;
  std::uint64_t providers_created_ = 0;
  std::uint64_t retries_reaped_ = 0;
  std::shared_ptr<bool> life_ = std::make_shared<bool>(true);
};

}  // namespace contory::core
