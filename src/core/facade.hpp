// Facade modules (Sec. 4.3).
//
// "For each of the three types of context provisioning mechanisms
// supported, a corresponding Facade module offers a unified interface for
// managing CxtProviders of that specific type. ... Once the query has
// been assigned to a Facade, in order to avoid redundancy and keep the
// number of active queries minimal, the Facade performs query
// aggregation": merging on submission, post-extraction on delivery.
// "CxtProviders of different Facades can be assigned to the same query,
// but each CxtProvider is assigned only to one (single or merged) query
// at time."
//
// Cluster matching is indexed, not scanned: query merging structurally
// requires equal SELECT type and interaction mode (query::QueryDistance
// returns +inf otherwise), so clusters are bucketed by (select_type,
// mode) — the source is this facade itself — and Submit only runs the
// full Merge check inside the one bucket that could possibly accept the
// query, examining at most kMaxMergeCandidates live clusters. Cancel
// resolves the owning cluster through a per-original-id map, and cluster
// death swap-removes from the bucket at a recorded position. A negative
// merge threshold (merging disabled) bypasses the index entirely, so
// Submit and teardown stay O(1) however many clusters share a key.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/providers/provider.hpp"
#include "core/query/merge.hpp"
#include "sim/simulation.hpp"

namespace contory::core {

class Facade {
 public:
  /// Builds a provider of this facade's mechanism for a (merged) query.
  using ProviderFactory = std::function<std::unique_ptr<CxtProvider>(
      query::CxtQuery, CxtProvider::Callbacks)>;
  /// Result for one *original* query (post-extraction already applied).
  using Delivery =
      std::function<void(const std::string& query_id, const CxtItem&)>;
  /// One original query finished on this facade: Ok (duration complete)
  /// or a transport failure the factory should react to.
  using Finished = std::function<void(const std::string& query_id,
                                      const Status& status)>;

  Facade(sim::Simulation& sim, query::SourceSel kind,
         ProviderFactory provider_factory, query::MergePolicy policy = {});
  ~Facade();

  Facade(const Facade&) = delete;
  Facade& operator=(const Facade&) = delete;

  [[nodiscard]] query::SourceSel kind() const noexcept { return kind_; }

  void SetDelivery(Delivery delivery) { delivery_ = std::move(delivery); }
  void SetFinished(Finished finished) { finished_ = std::move(finished); }

  /// Assigns a query: merged into an existing compatible cluster (the
  /// provider's parameters are updated) or given a fresh provider.
  Status Submit(query::CxtQuery q);

  /// Cancels one original query. The cluster re-merges the remaining
  /// originals or, when none remain, its provider stops.
  void Cancel(const std::string& query_id);

  /// Stops every provider, reporting `status` per original (used by
  /// control-policy enforcement: reducePower suspends queries).
  void StopAll(const Status& status);

  [[nodiscard]] std::size_t active_provider_count() const noexcept {
    return live_clusters_;
  }
  [[nodiscard]] std::size_t active_original_count() const noexcept {
    return live_originals_;
  }
  /// The merged query texts currently driving providers (diagnostics).
  [[nodiscard]] std::vector<std::string> ActiveMergedIds() const;
  /// Total providers ever created (the merging ablation's key metric).
  [[nodiscard]] std::uint64_t providers_created() const noexcept {
    return providers_created_;
  }
  /// Transient-failure retries performed by this facade's providers,
  /// reaped and live (robustness diagnostics).
  [[nodiscard]] std::uint64_t retries_observed() const;

 private:
  /// Merge-compatibility bucket: SELECT type and interaction mode are
  /// hard gates in query::QueryDistance, so only clusters under the same
  /// key can ever accept the query.
  using ClusterKey = std::pair<std::string, int>;

  struct ClusterKeyHash {
    [[nodiscard]] std::size_t operator()(const ClusterKey& key) const {
      const std::size_t h = std::hash<std::string>{}(key.first);
      // Boost-style combine; the int half is tiny but must still spread.
      return h ^ (std::hash<int>{}(key.second) + 0x9e3779b97f4a7c15ULL +
                  (h << 6) + (h >> 2));
    }
  };

  struct Cluster {
    ClusterKey key;
    query::CxtQuery merged;
    std::vector<query::CxtQuery> originals;
    std::unique_ptr<CxtProvider> provider;
    bool dead = false;
    /// True while the cluster is present in merge_index_/by_original_id_
    /// and counted in the live totals (set after a successful start).
    bool indexed = false;
    /// Position inside merge_index_[key] while indexed there (swap-remove
    /// bookkeeping; unused when merging is disabled).
    std::size_t bucket_pos = 0;
  };

  /// Submit examines at most this many live clusters per bucket: past
  /// that the distance checks themselves would dominate submission cost,
  /// so the query gets a fresh provider instead of a deeper search.
  static constexpr std::size_t kMaxMergeCandidates = 64;

  [[nodiscard]] static ClusterKey KeyFor(const query::CxtQuery& q);

  void OnProviderDelivery(Cluster& cluster, const CxtItem& item);
  void OnProviderFinished(Cluster& cluster, const Status& status);
  /// Marks a cluster dead and detaches it from both indexes; the object
  /// itself is destroyed later by the reap.
  void MarkDead(Cluster& cluster);
  /// Destroys dead clusters outside provider callbacks.
  void ScheduleReap();
  Status StartCluster(Cluster& cluster);

  sim::Simulation& sim_;
  query::SourceSel kind_;
  ProviderFactory provider_factory_;
  query::MergePolicy policy_;
  Delivery delivery_;
  Finished finished_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  /// Live clusters by merge-compatibility key (Submit's candidate set).
  /// Hashed, not ordered: Submit sits on the hot path and only ever does
  /// point lookups, so a string compare per tree level is pure waste.
  std::unordered_map<ClusterKey, std::vector<Cluster*>, ClusterKeyHash>
      merge_index_;
  /// Live original query id -> owning cluster (Cancel's lookup).
  std::unordered_map<std::string, Cluster*> by_original_id_;
  std::size_t live_clusters_ = 0;
  std::size_t live_originals_ = 0;
  /// Non-null while the named cluster's provider is inside Start(); a
  /// finish arriving then is deferred to a fresh event (see
  /// OnProviderFinished).
  Cluster* starting_ = nullptr;
  bool reap_scheduled_ = false;
  std::uint64_t providers_created_ = 0;
  std::uint64_t retries_reaped_ = 0;
  std::shared_ptr<bool> life_ = std::make_shared<bool>(true);
};

}  // namespace contory::core
