#include "core/query_manager.hpp"

#include <algorithm>

namespace contory::core {

Status QueryManager::Register(query::CxtQuery query, Client& client) {
  if (query.id.empty()) {
    return InvalidArgument("query must have an id before registration");
  }
  if (records_.contains(query.id)) {
    return AlreadyExists("query '" + query.id + "' already active");
  }
  QueryRecord record;
  record.query = std::move(query);
  record.client = &client;
  record.submitted = sim_.Now();
  records_.emplace(record.query.id, std::move(record));
  return Status::Ok();
}

QueryRecord* QueryManager::Find(const std::string& id) {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

const QueryRecord* QueryManager::Find(const std::string& id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

void QueryManager::Remove(const std::string& id) { records_.erase(id); }

bool QueryManager::RecordDelivery(QueryRecord& record,
                                  const std::string& item_id) {
  if (record.seen_items.contains(item_id)) return false;
  record.seen_items.insert(item_id);
  record.seen_order.push_back(item_id);
  while (record.seen_order.size() > kSeenCap) {
    record.seen_items.erase(record.seen_order.front());
    record.seen_order.erase(record.seen_order.begin());
  }
  ++record.items_delivered;
  return true;
}

std::vector<std::string> QueryManager::ActiveIds() const {
  std::vector<std::string> ids;
  ids.reserve(records_.size());
  for (const auto& [id, record] : records_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace contory::core
