// Simulated 802.11b ad hoc WiFi (the Smart Messages transport).
//
// The paper's WiFi findings are blunt: merely having WiFi connected drains
// a constant ~300 mA (~1190 mW with backlight) — "more than 100 times more
// energy-consuming than having BT in inquiry mode" — and with the meter in
// series the in-rush current at WiFi startup tripped the communicator's
// protection circuit. Per-frame latency is dominated by per-hop connection
// establishment and transfer time (Table 1 break-up). We model exactly
// those: a heavy constant drain while enabled, an in-rush trip check at
// enable time, range-based neighbor reachability, and per-frame
// connect+transfer latency. Serialization and thread-switch costs are the
// SM runtime's business (see sm/).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "net/medium.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::net {

class WifiController;

/// Per-simulation registry of WiFi radios.
class WifiBus {
 public:
  explicit WifiBus(Medium& medium) : medium_(medium) {}
  [[nodiscard]] Medium& medium() noexcept { return medium_; }
  [[nodiscard]] WifiController* Find(NodeId id) const noexcept;

 private:
  friend class WifiController;
  void Attach(NodeId id, WifiController* c) { controllers_[id] = c; }
  void Detach(NodeId id) { controllers_.erase(id); }

  Medium& medium_;
  std::unordered_map<NodeId, WifiController*> controllers_;
};

struct WifiConfig {
  double range_m = 100.0;  // 802.11b ad hoc, open air
};

class WifiController {
 public:
  WifiController(sim::Simulation& sim, WifiBus& bus, phone::SmartPhone& phone,
                 NodeId node, WifiConfig config = {});
  ~WifiController();

  WifiController(const WifiController&) = delete;
  WifiController& operator=(const WifiController&) = delete;

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] phone::SmartPhone& phone() noexcept { return phone_; }
  [[nodiscard]] double range_m() const noexcept { return config_.range_m; }

  /// Joins/leaves the ad hoc network. Joining applies the constant
  /// connected drain and performs the in-rush check against the battery:
  /// with the multimeter inserted, the startup transient trips the
  /// protection circuit (the paper's communicator switch-off) — reported
  /// through Battery's trip listener; the radio still joins so that, like
  /// the authors, we can reason from partial logs.
  void SetEnabled(bool enabled);
  [[nodiscard]] bool enabled() const noexcept { return enabled_ && !failed_; }

  /// Failure injection (node crash / out of battery).
  void SetFailed(bool failed);

  /// Fault injection: fraction of outgoing frames lost in the air (the
  /// air time is still spent; `done` reports kUnavailable).
  void SetLossRate(double rate) noexcept { loss_rate_ = rate; }
  [[nodiscard]] double loss_rate() const noexcept { return loss_rate_; }

  /// Fault injection: extra latency added to every outgoing frame.
  void SetExtraLatency(SimDuration extra) noexcept { extra_latency_ = extra; }
  [[nodiscard]] SimDuration extra_latency() const noexcept {
    return extra_latency_;
  }

  /// Enabled WiFi nodes currently in radio range, nearest first.
  [[nodiscard]] std::vector<NodeId> Neighbors() const;
  [[nodiscard]] bool IsNeighbor(NodeId other) const;

  /// Sends a frame to a direct neighbor. Latency = per-hop connection
  /// establishment + air time at the effective SM-over-WiFi throughput.
  /// Delivery invokes the peer's frame handler; `done` reports success or
  /// why the frame was dropped.
  void SendFrame(NodeId to, std::vector<std::byte> payload,
                 std::function<void(Status)> done = {});

  using FrameHandler =
      std::function<void(NodeId from, const std::vector<std::byte>&)>;
  void SetFrameHandler(FrameHandler handler) {
    frame_handler_ = std::move(handler);
  }

  /// Air time of a payload at the profile's effective throughput.
  [[nodiscard]] SimDuration TransferTime(std::size_t payload_bytes) const;

 private:
  sim::Simulation& sim_;
  WifiBus& bus_;
  phone::SmartPhone& phone_;
  NodeId node_;
  WifiConfig config_;
  bool enabled_ = false;
  bool failed_ = false;
  double loss_rate_ = 0.0;
  SimDuration extra_latency_ = SimDuration::zero();
  FrameHandler frame_handler_;
};

}  // namespace contory::net
