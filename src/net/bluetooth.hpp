// Simulated Bluetooth stack (the paper's JSR-82 substrate).
//
// Models the pieces of Bluetooth that dominate Contory's BT-based results:
//  * inquiry (device discovery): ~13 s of high-power scanning (Sec. 6.1),
//  * SDP service discovery: ~1.12 s per device,
//  * SDDB service registration: ~140 ms (Table 1, publishCxtItem BT),
//  * ACL links with paging latency, low-power upkeep, and L2CAP-style
//    segmentation — the reason 340 B NMEA bursts cost more than 136 B
//    context items (Table 2, intSensor vs adHocNetwork),
//  * failure injection (a BT-GPS switching off) with supervision-timeout
//    link drop, which is what drives the Fig. 5 failover experiment.
//
// Range is ~10 m class-2; BT is strictly one-hop, as in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "net/medium.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::net {

class BluetoothController;

/// Connects BluetoothControllers to each other: a per-simulation registry
/// mapping medium NodeIds to their BT controller, plus global defaults.
class BluetoothBus {
 public:
  explicit BluetoothBus(Medium& medium) : medium_(medium) {}

  [[nodiscard]] Medium& medium() noexcept { return medium_; }
  [[nodiscard]] BluetoothController* Find(NodeId id) const noexcept;

 private:
  friend class BluetoothController;
  void Attach(NodeId id, BluetoothController* c) { controllers_[id] = c; }
  void Detach(NodeId id) { controllers_.erase(id); }

  Medium& medium_;
  std::unordered_map<NodeId, BluetoothController*> controllers_;
};

/// An entry in a device's Service Discovery Database.
struct ServiceRecord {
  std::string service_name;          // e.g. "contory.cxt.temperature"
  std::vector<std::byte> data_element;  // serialized payload (DataElement)
};

using ServiceHandle = std::uint64_t;
using BtLinkId = std::uint64_t;

struct BtDeviceInfo {
  NodeId node = kInvalidNode;
  std::string name;
};

struct BluetoothConfig {
  double range_m = 10.0;  // class-2 radio
  /// Link supervision timeout: how long after a peer vanishes the local
  /// stack reports the link dead.
  SimDuration supervision_timeout = std::chrono::seconds{1};
};

class BluetoothController {
 public:
  /// Attaches a BT radio to `node` (already registered in the medium),
  /// drawing power from `phone`'s energy model.
  BluetoothController(sim::Simulation& sim, BluetoothBus& bus,
                      phone::SmartPhone& phone, NodeId node,
                      BluetoothConfig config = {});
  ~BluetoothController();

  BluetoothController(const BluetoothController&) = delete;
  BluetoothController& operator=(const BluetoothController&) = delete;

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] phone::SmartPhone& phone() noexcept { return phone_; }

  /// Powers the radio on (page/inquiry-scan mode, +2.72 mW) or off.
  /// Powering off drops all links and unregisters nothing from the SDDB
  /// (records survive, as on a real stack, but are unreachable).
  void SetEnabled(bool enabled);
  [[nodiscard]] bool enabled() const noexcept { return enabled_ && !failed_; }

  /// Failure injection: the device vanishes from the air (Fig. 5's GPS
  /// switch-off). Links drop after the supervision timeout on peers.
  void SetFailed(bool failed);
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Fault injection: fraction of outgoing payloads lost in the air.
  /// The radio still burns the air time and segment energy; the peer's
  /// data handler is never invoked and `delivered` reports kUnavailable.
  void SetLossRate(double rate) noexcept { loss_rate_ = rate; }
  [[nodiscard]] double loss_rate() const noexcept { return loss_rate_; }

  /// Fault injection: extra latency added to every outgoing transfer
  /// (interference / co-channel contention spikes).
  void SetExtraLatency(SimDuration extra) noexcept { extra_latency_ = extra; }
  [[nodiscard]] SimDuration extra_latency() const noexcept {
    return extra_latency_;
  }

  // --- Inquiry (device discovery) ---------------------------------------
  using InquiryCallback =
      std::function<void(Result<std::vector<BtDeviceInfo>>)>;
  /// Runs a full inquiry (~13 s at inquiry power); reports discoverable,
  /// enabled devices in range. Only one inquiry at a time per controller.
  void StartInquiry(InquiryCallback done);
  [[nodiscard]] bool inquiry_in_progress() const noexcept {
    return inquiry_active_;
  }

  // --- SDP --------------------------------------------------------------
  /// Registers a service record in the local SDDB. Completion (and the
  /// paper's ~140 ms DataElement+SDDB cost) is reported via `done`.
  void RegisterService(ServiceRecord record,
                       std::function<void(Result<ServiceHandle>)> done);
  void UnregisterService(ServiceHandle handle);
  /// Updates the payload of an already-registered record in place (cheap;
  /// used by periodic publishers re-publishing fresh values).
  Status UpdateService(ServiceHandle handle,
                       std::vector<std::byte> data_element);

  using SdpCallback =
      std::function<void(Result<std::vector<ServiceRecord>>)>;
  /// Service discovery on a remote device (~1.12 s). Reports all records,
  /// optionally filtered by name prefix.
  void DiscoverServices(NodeId device, std::string name_prefix,
                        SdpCallback done);

  // --- Links ------------------------------------------------------------
  using ConnectCallback = std::function<void(Result<BtLinkId>)>;
  /// Pages `remote` and establishes an ACL link (~18 ms when reachable).
  void Connect(NodeId remote, ConnectCallback done);

  /// Sends `payload` over `link`. Delivery (with segmentation-dependent
  /// latency and transfer power on both ends) invokes the peer's data
  /// handler; `delivered` (optional) fires on the sender afterwards. If
  /// the link is dead, `delivered` gets a failure and the disconnect
  /// handler fires.
  void Send(BtLinkId link, std::vector<std::byte> payload,
            std::function<void(Status)> delivered = {});

  void Disconnect(BtLinkId link);
  [[nodiscard]] bool LinkAlive(BtLinkId link) const noexcept;
  [[nodiscard]] Result<NodeId> LinkPeer(BtLinkId link) const;
  /// All currently alive link ids, ascending.
  [[nodiscard]] std::vector<BtLinkId> AliveLinks() const;

  /// Handler for payloads arriving on any link of this controller.
  using DataHandler = std::function<void(BtLinkId link, NodeId from,
                                         const std::vector<std::byte>&)>;
  void SetDataHandler(DataHandler handler) {
    data_handler_ = std::move(handler);
  }

  /// Handler invoked when a link drops for any reason other than a local
  /// Disconnect() call (peer failed, out of range, radio off).
  using DisconnectHandler = std::function<void(BtLinkId link, NodeId peer)>;
  void SetDisconnectHandler(DisconnectHandler handler) {
    disconnect_handler_ = std::move(handler);
  }

  /// On-air size of `payload_bytes` after L2CAP-style segmentation.
  [[nodiscard]] std::size_t WireBytes(std::size_t payload_bytes) const;
  /// Air time for a payload at the profile's effective throughput.
  [[nodiscard]] SimDuration TransferTime(std::size_t payload_bytes) const;

 private:
  struct Link {
    NodeId peer = kInvalidNode;
    BtLinkId peer_link = 0;
    bool alive = false;
  };

  void BeginTransferPower();
  void EndTransferPower();
  void UpdateLinkPower();
  /// Drops every link, notifying peers (after supervision timeout) and the
  /// local handler (immediately unless `silent_local`).
  void DropAllLinks(bool silent_local);
  void OnPeerLinkDropped(BtLinkId local_link);
  [[nodiscard]] bool Reachable(NodeId remote) const;

  sim::Simulation& sim_;
  BluetoothBus& bus_;
  phone::SmartPhone& phone_;
  NodeId node_;
  BluetoothConfig config_;
  bool enabled_ = false;
  bool failed_ = false;
  bool inquiry_active_ = false;
  double loss_rate_ = 0.0;
  SimDuration extra_latency_ = SimDuration::zero();

  std::map<ServiceHandle, ServiceRecord> sddb_;
  ServiceHandle next_service_ = 1;

  std::map<BtLinkId, Link> links_;
  BtLinkId next_link_ = 1;
  int active_transfers_ = 0;

  DataHandler data_handler_;
  DisconnectHandler disconnect_handler_;
};

}  // namespace contory::net
