#include "net/wifi.hpp"

#include <utility>

#include "common/logging.hpp"
#include "obs/observability.hpp"

namespace contory::net {
namespace {
constexpr const char* kModule = "wifi";
constexpr const char* kConnected = "wifi.connected";
}  // namespace

WifiController* WifiBus::Find(NodeId id) const noexcept {
  const auto it = controllers_.find(id);
  return it == controllers_.end() ? nullptr : it->second;
}

WifiController::WifiController(sim::Simulation& sim, WifiBus& bus,
                               phone::SmartPhone& phone, NodeId node,
                               WifiConfig config)
    : sim_(sim), bus_(bus), phone_(phone), node_(node), config_(config) {
  bus_.Attach(node_, this);
  // Feed the medium's spatial index its cell-size derivation hint.
  bus_.medium().NoteRadioRange(config_.range_m);
}

WifiController::~WifiController() { bus_.Detach(node_); }

void WifiController::SetEnabled(bool enabled) {
  if (enabled_ == enabled) return;
  enabled_ = enabled;
  const double drain = phone_.profile().wifi_connected_power_mw;
  if (enabled) {
    if (phone_.battery().InrushTrips(drain)) {
      CLOG_WARN(kModule,
                "node %u: WiFi in-rush tripped the protection circuit "
                "(meter in series)",
                node_);
      phone_.battery().ReportTrip();
    }
    phone_.energy().SetComponentPower(kConnected, drain);
  } else {
    phone_.energy().SetComponentPower(kConnected, 0.0);
  }
}

void WifiController::SetFailed(bool failed) {
  failed_ = failed;
  if (failed) phone_.energy().SetComponentPower(kConnected, 0.0);
}

std::vector<NodeId> WifiController::Neighbors() const {
  if (!enabled()) return {};
  return bus_.medium().NodesWithin(node_, config_.range_m, [this](NodeId n) {
    const WifiController* peer = bus_.Find(n);
    return peer != nullptr && peer->enabled();
  });
}

bool WifiController::IsNeighbor(NodeId other) const {
  if (!enabled()) return false;
  const WifiController* peer = bus_.Find(other);
  return peer != nullptr && peer->enabled() &&
         bus_.medium().InRange(node_, other, config_.range_m);
}

SimDuration WifiController::TransferTime(std::size_t payload_bytes) const {
  const double bits = static_cast<double>(payload_bytes) * 8.0;
  return FromSeconds(bits / phone_.profile().wifi_throughput_bps);
}

void WifiController::SendFrame(NodeId to, std::vector<std::byte> payload,
                               std::function<void(Status)> done) {
  if (!enabled()) {
    if (done) done(Unavailable("wifi radio is off"));
    return;
  }
  if (!IsNeighbor(to)) {
    if (done) done(Unavailable("node " + std::to_string(to) +
                               " is not a wifi neighbor"));
    return;
  }
  // Office-environment noise: a few percent jitter on the air time, plus
  // any injected latency spike.
  const SimDuration latency =
      SimDuration{static_cast<std::int64_t>(phone_.rng().Jitter(
          static_cast<double>((phone_.profile().wifi_connect_latency +
                               TransferTime(payload.size()))
                                  .count()),
          0.04))} +
      extra_latency_;
  // Injected frame loss. Drawn only when a loss window is active so the
  // rng stream of loss-free runs is unchanged.
  const bool lost = loss_rate_ > 0.0 && phone_.rng().Bernoulli(loss_rate_);
  COBS({
    static obs::Counter& frames = obs::Observability::metrics().GetCounter(
        "radio_tx_frames_total", {{"radio", "wifi"}});
    static obs::Counter& bytes = obs::Observability::metrics().GetCounter(
        "radio_tx_bytes_total", {{"radio", "wifi"}});
    // Per-frame airtime (connect + transfer + jitter + injected spikes):
    // the per-hop transfer distribution the SM hop spans decompose.
    static obs::Histogram& airtime =
        obs::Observability::metrics().GetHistogram("radio_frame_airtime_ms",
                                                   {{"radio", "wifi"}});
    frames.Inc();
    bytes.Inc(payload.size());
    airtime.Observe(ToMillis(latency));
  });
  sim_.ScheduleAfter(
      latency,
      [this, to, lost, payload = std::move(payload), done = std::move(done)] {
        if (lost) {
          COBS({
            static obs::Counter& dropped =
                obs::Observability::metrics().GetCounter(
                    "radio_frames_lost_total", {{"radio", "wifi"}});
            dropped.Inc();
          });
          if (done) done(Unavailable("frame lost in the air"));
          return;
        }
        WifiController* peer = bus_.Find(to);
        if (peer == nullptr || !peer->enabled() || !IsNeighbor(to)) {
          if (done) done(Unavailable("peer lost during transfer"));
          return;
        }
        if (peer->frame_handler_) peer->frame_handler_(node_, payload);
        if (done) done(Status::Ok());
      },
      "wifi.frame");
}

}  // namespace contory::net
