#include "net/bluetooth.hpp"

#include <cmath>
#include <utility>

#include "common/logging.hpp"
#include "obs/observability.hpp"

namespace contory::net {
namespace {
constexpr const char* kModule = "bt";
// Energy-ledger component names for this radio.
constexpr const char* kScan = "bt.scan";
constexpr const char* kInquiry = "bt.inquiry";
constexpr const char* kSdp = "bt.sdp";
constexpr const char* kLink = "bt.link";
constexpr const char* kTransfer = "bt.transfer";
}  // namespace

BluetoothController* BluetoothBus::Find(NodeId id) const noexcept {
  const auto it = controllers_.find(id);
  return it == controllers_.end() ? nullptr : it->second;
}

BluetoothController::BluetoothController(sim::Simulation& sim,
                                         BluetoothBus& bus,
                                         phone::SmartPhone& phone,
                                         NodeId node, BluetoothConfig config)
    : sim_(sim), bus_(bus), phone_(phone), node_(node), config_(config) {
  bus_.Attach(node_, this);
  // Feed the medium's spatial index its cell-size derivation hint.
  bus_.medium().NoteRadioRange(config_.range_m);
}

BluetoothController::~BluetoothController() { bus_.Detach(node_); }

void BluetoothController::SetEnabled(bool enabled) {
  if (enabled_ == enabled) return;
  enabled_ = enabled;
  phone_.energy().SetComponentPower(
      kScan, enabled ? phone_.profile().bt_scan_power_mw : 0.0);
  if (!enabled) DropAllLinks(/*silent_local=*/false);
}

void BluetoothController::SetFailed(bool failed) {
  if (failed_ == failed) return;
  failed_ = failed;
  if (failed) {
    // The device falls off the air: peers find out via supervision
    // timeout; locally the stack is simply gone (no callbacks).
    DropAllLinks(/*silent_local=*/true);
  }
}

bool BluetoothController::Reachable(NodeId remote) const {
  const BluetoothController* peer = bus_.Find(remote);
  return peer != nullptr && peer->enabled() &&
         bus_.medium().InRange(node_, remote, config_.range_m);
}

void BluetoothController::StartInquiry(InquiryCallback done) {
  if (!done) return;
  if (!enabled()) {
    done(Unavailable("bluetooth radio is off"));
    return;
  }
  if (inquiry_active_) {
    done(FailedPrecondition("inquiry already in progress"));
    return;
  }
  inquiry_active_ = true;
  phone_.energy().SetComponentPower(kInquiry,
                                    phone_.profile().bt_inquiry_power_mw);
  const SimDuration window = SimDuration{static_cast<std::int64_t>(
      phone_.rng().Jitter(
          static_cast<double>(phone_.profile().bt_inquiry_duration.count()),
          0.04))};
  sim_.ScheduleAfter(window, [this, done = std::move(done)] {
    inquiry_active_ = false;
    phone_.energy().SetComponentPower(kInquiry, 0.0);
    if (!enabled()) {
      done(Unavailable("bluetooth radio switched off during inquiry"));
      return;
    }
    std::vector<BtDeviceInfo> found;
    for (const NodeId id : bus_.medium().NodesWithin(
             node_, config_.range_m,
             [this](NodeId n) { return Reachable(n); })) {
      found.push_back(
          BtDeviceInfo{id, bus_.medium().GetName(id).value_or("?")});
    }
    CLOG_DEBUG(kModule, "node %u inquiry found %zu devices", node_,
               found.size());
    done(std::move(found));
  }, "bt.inquiry.done");
}

void BluetoothController::RegisterService(
    ServiceRecord record, std::function<void(Result<ServiceHandle>)> done) {
  // Building the DataElement and inserting it into the SDDB is the 140 ms
  // measured for BT publishCxtItem (Table 1) — CPU-bound on the phone.
  const SimDuration cost = SimDuration{static_cast<std::int64_t>(
      phone_.rng().Jitter(
          static_cast<double>(phone_.profile().bt_register_latency.count()),
          0.01))};
  phone_.ChargeCpu(cost);
  sim_.ScheduleAfter(cost, [this, record = std::move(record),
                            done = std::move(done)]() mutable {
    const ServiceHandle handle = next_service_++;
    sddb_.emplace(handle, std::move(record));
    if (done) done(handle);
  }, "bt.sdp.register");
}

void BluetoothController::UnregisterService(ServiceHandle handle) {
  sddb_.erase(handle);
}

Status BluetoothController::UpdateService(ServiceHandle handle,
                                          std::vector<std::byte> data) {
  const auto it = sddb_.find(handle);
  if (it == sddb_.end()) {
    return NotFound("no service record " + std::to_string(handle));
  }
  it->second.data_element = std::move(data);
  return Status::Ok();
}

void BluetoothController::DiscoverServices(NodeId device,
                                           std::string name_prefix,
                                           SdpCallback done) {
  if (!done) return;
  if (!enabled()) {
    done(Unavailable("bluetooth radio is off"));
    return;
  }
  if (!Reachable(device)) {
    done(Unavailable("device " + std::to_string(device) +
                     " not reachable over bluetooth"));
    return;
  }
  phone_.energy().SetComponentPower(kSdp, phone_.profile().bt_sdp_power_mw);
  const SimDuration window = SimDuration{static_cast<std::int64_t>(
      phone_.rng().Jitter(
          static_cast<double>(phone_.profile().bt_sdp_duration.count()),
          0.05))};
  sim_.ScheduleAfter(window, [this, device, name_prefix = std::move(name_prefix),
                              done = std::move(done)] {
    phone_.energy().SetComponentPower(kSdp, 0.0);
    BluetoothController* peer = bus_.Find(device);
    if (peer == nullptr || !Reachable(device)) {
      done(Unavailable("device vanished during service discovery"));
      return;
    }
    std::vector<ServiceRecord> records;
    for (const auto& [handle, rec] : peer->sddb_) {
      if (rec.service_name.rfind(name_prefix, 0) == 0) {
        records.push_back(rec);
      }
    }
    done(std::move(records));
  }, "bt.sdp.discover");
}

void BluetoothController::Connect(NodeId remote, ConnectCallback done) {
  if (!done) return;
  if (!enabled()) {
    done(Unavailable("bluetooth radio is off"));
    return;
  }
  sim_.ScheduleAfter(phone_.profile().bt_connect_latency, [this, remote,
                                                           done] {
    BluetoothController* peer = bus_.Find(remote);
    if (peer == nullptr || !Reachable(remote)) {
      done(Unavailable("page timeout: device " + std::to_string(remote) +
                       " unreachable"));
      return;
    }
    const BtLinkId local = next_link_++;
    const BtLinkId remote_link = peer->next_link_++;
    links_.emplace(local, Link{remote, remote_link, true});
    peer->links_.emplace(remote_link, Link{node_, local, true});
    UpdateLinkPower();
    peer->UpdateLinkPower();
    CLOG_DEBUG(kModule, "link %u:%llu <-> %u:%llu established", node_,
               static_cast<unsigned long long>(local), remote,
               static_cast<unsigned long long>(remote_link));
    done(local);
  }, "bt.page");
}

std::size_t BluetoothController::WireBytes(std::size_t payload_bytes) const {
  const auto& p = phone_.profile();
  const auto segs = static_cast<std::size_t>(
      std::ceil(static_cast<double>(payload_bytes) /
                static_cast<double>(p.bt_segment_payload_bytes)));
  return payload_bytes +
         segs * static_cast<std::size_t>(p.bt_segment_overhead_bytes);
}

SimDuration BluetoothController::TransferTime(
    std::size_t payload_bytes) const {
  const double bits = static_cast<double>(WireBytes(payload_bytes)) * 8.0;
  return FromSeconds(bits / phone_.profile().bt_throughput_bps);
}

void BluetoothController::BeginTransferPower() {
  if (++active_transfers_ == 1) {
    phone_.energy().SetComponentPower(kTransfer,
                                      phone_.profile().bt_transfer_power_mw);
  }
}

void BluetoothController::EndTransferPower() {
  if (--active_transfers_ == 0) {
    phone_.energy().SetComponentPower(kTransfer, 0.0);
  }
}

void BluetoothController::UpdateLinkPower() {
  std::size_t alive = 0;
  for (const auto& [id, link] : links_) {
    if (link.alive) ++alive;
  }
  phone_.energy().SetComponentPower(
      kLink, alive > 0 ? phone_.profile().bt_link_power_mw : 0.0);
}

void BluetoothController::Send(BtLinkId link, std::vector<std::byte> payload,
                               std::function<void(Status)> delivered) {
  const auto it = links_.find(link);
  if (it == links_.end() || !it->second.alive || !enabled()) {
    if (delivered) delivered(Unavailable("link not alive"));
    return;
  }
  const NodeId peer_id = it->second.peer;
  const BtLinkId peer_link = it->second.peer_link;
  if (!Reachable(peer_id)) {
    // Peer moved away or died: supervision timeout then drop.
    sim_.ScheduleAfter(config_.supervision_timeout, [this, link] {
      OnPeerLinkDropped(link);
    }, "bt.supervision");
    if (delivered) delivered(Unavailable("peer unreachable; link dropping"));
    return;
  }

  BluetoothController* peer = bus_.Find(peer_id);
  // Office-environment noise: a few percent jitter on the air time, plus
  // any injected latency spike.
  const SimDuration air =
      SimDuration{static_cast<std::int64_t>(phone_.rng().Jitter(
          static_cast<double>(TransferTime(payload.size()).count()), 0.04))} +
      extra_latency_;
  // Injected packet loss. Drawn only when a loss window is active so the
  // rng stream of loss-free runs is unchanged.
  const bool lost = loss_rate_ > 0.0 && phone_.rng().Bernoulli(loss_rate_);
  // Per-segment radio overhead on both endpoints.
  const auto segments = static_cast<double>(
      (payload.size() + phone_.profile().bt_segment_payload_bytes - 1) /
      phone_.profile().bt_segment_payload_bytes);
  phone_.energy().AddEnergyJoules(
      segments * phone_.profile().bt_segment_energy_mj / 1e3);
  peer->phone_.energy().AddEnergyJoules(
      segments * peer->phone_.profile().bt_segment_energy_mj / 1e3);
  COBS({
    static obs::Counter& frames = obs::Observability::metrics().GetCounter(
        "radio_tx_frames_total", {{"radio", "bt"}});
    static obs::Counter& bytes = obs::Observability::metrics().GetCounter(
        "radio_tx_bytes_total", {{"radio", "bt"}});
    frames.Inc();
    bytes.Inc(payload.size());
  });
  BeginTransferPower();
  peer->BeginTransferPower();
  sim_.ScheduleAfter(
      air,
      [this, peer_id, peer_link, link, lost, payload = std::move(payload),
       delivered = std::move(delivered)]() mutable {
        EndTransferPower();
        BluetoothController* peer = bus_.Find(peer_id);
        if (peer != nullptr) {
          peer->EndTransferPower();
          if (!lost && peer->enabled()) {
            const auto lk = peer->links_.find(peer_link);
            if (lk != peer->links_.end() && lk->second.alive &&
                peer->data_handler_) {
              peer->data_handler_(peer_link, node_, payload);
            }
          }
        }
        if (lost) {
          COBS({
            static obs::Counter& dropped =
                obs::Observability::metrics().GetCounter(
                    "radio_frames_lost_total", {{"radio", "bt"}});
            dropped.Inc();
          });
        }
        if (delivered) {
          if (lost) {
            delivered(Unavailable("payload lost in the air"));
            return;
          }
          const bool ok = peer != nullptr && peer->enabled() &&
                          links_.contains(link);
          delivered(ok ? Status::Ok()
                       : Unavailable("peer lost during transfer"));
        }
      },
      "bt.transfer");
}

void BluetoothController::Disconnect(BtLinkId link) {
  const auto it = links_.find(link);
  if (it == links_.end()) return;
  const NodeId peer_id = it->second.peer;
  const BtLinkId peer_link = it->second.peer_link;
  links_.erase(it);
  UpdateLinkPower();
  BluetoothController* peer = bus_.Find(peer_id);
  if (peer != nullptr) peer->OnPeerLinkDropped(peer_link);
}

bool BluetoothController::LinkAlive(BtLinkId link) const noexcept {
  const auto it = links_.find(link);
  return it != links_.end() && it->second.alive;
}

std::vector<BtLinkId> BluetoothController::AliveLinks() const {
  std::vector<BtLinkId> out;
  for (const auto& [id, link] : links_) {
    if (link.alive) out.push_back(id);
  }
  return out;
}

Result<NodeId> BluetoothController::LinkPeer(BtLinkId link) const {
  const auto it = links_.find(link);
  if (it == links_.end()) return NotFound("no such link");
  return it->second.peer;
}

void BluetoothController::OnPeerLinkDropped(BtLinkId local_link) {
  const auto it = links_.find(local_link);
  if (it == links_.end()) return;
  const NodeId peer = it->second.peer;
  links_.erase(it);
  UpdateLinkPower();
  CLOG_DEBUG(kModule, "node %u link %llu to %u dropped", node_,
             static_cast<unsigned long long>(local_link), peer);
  if (disconnect_handler_) disconnect_handler_(local_link, peer);
}

void BluetoothController::DropAllLinks(bool silent_local) {
  auto links = std::move(links_);
  links_.clear();
  UpdateLinkPower();
  for (const auto& [id, link] : links) {
    if (!link.alive) continue;
    BluetoothController* peer = bus_.Find(link.peer);
    if (peer != nullptr) {
      // Peers learn after the supervision timeout.
      const BtLinkId peer_link = link.peer_link;
      const NodeId peer_id = link.peer;
      sim_.ScheduleAfter(config_.supervision_timeout,
                         [this, peer_id, peer_link] {
                           BluetoothController* p = bus_.Find(peer_id);
                           if (p != nullptr) p->OnPeerLinkDropped(peer_link);
                         },
                         "bt.supervision");
    }
    if (!silent_local && disconnect_handler_) {
      disconnect_handler_(id, link.peer);
    }
  }
}

}  // namespace contory::net
