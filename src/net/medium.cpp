#include "net/medium.hpp"

#include <algorithm>
#include <cmath>

namespace contory::net {

double Distance(Position a, Position b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

NodeId Medium::Register(std::string name, Position pos) {
  const NodeId id = next_id_++;
  nodes_.emplace(id, NodeInfo{std::move(name), pos});
  return id;
}

void Medium::Unregister(NodeId id) { nodes_.erase(id); }

bool Medium::Exists(NodeId id) const noexcept { return nodes_.contains(id); }

Result<Position> Medium::GetPosition(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return NotFound("node " + std::to_string(id) + " not registered");
  }
  return it->second.pos;
}

Result<std::string> Medium::GetName(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return NotFound("node " + std::to_string(id) + " not registered");
  }
  return it->second.name;
}

Status Medium::SetPosition(NodeId id, Position pos) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return NotFound("node " + std::to_string(id) + " not registered");
  }
  it->second.pos = pos;
  return Status::Ok();
}

Result<double> Medium::DistanceBetween(NodeId a, NodeId b) const {
  const auto pa = GetPosition(a);
  if (!pa.ok()) return pa.status();
  const auto pb = GetPosition(b);
  if (!pb.ok()) return pb.status();
  return Distance(*pa, *pb);
}

bool Medium::InRange(NodeId a, NodeId b, double range_m) const {
  const auto d = DistanceBetween(a, b);
  return d.ok() && *d <= range_m;
}

std::vector<NodeId> Medium::NodesWithin(
    NodeId center, double range_m,
    const std::function<bool(NodeId)>& filter) const {
  const auto cpos = GetPosition(center);
  if (!cpos.ok()) return {};
  std::vector<std::pair<double, NodeId>> hits;
  for (const auto& [id, info] : nodes_) {
    if (id == center) continue;
    const double d = Distance(*cpos, info.pos);
    if (d <= range_m && (!filter || filter(id))) hits.emplace_back(d, id);
  }
  // Deterministic order: nearest first, distance ties broken by ascending
  // NodeId (spelled out, not left to pair's lexicographic operator<, so
  // the contract survives refactors of the hit representation).
  std::sort(hits.begin(), hits.end(),
            [](const std::pair<double, NodeId>& a,
               const std::pair<double, NodeId>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  std::vector<NodeId> out;
  out.reserve(hits.size());
  for (const auto& [d, id] : hits) out.push_back(id);
  return out;
}

std::vector<NodeId> Medium::AllNodes() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, info] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace contory::net
