#include "net/medium.hpp"

#include <algorithm>
#include <cmath>

#include "obs/observability.hpp"

namespace contory::net {
namespace {

/// Cell coordinates are clamped to 32-bit so one u64 key can hold both;
/// at the 1 m minimum cell size that still spans ±2 billion meters.
std::int64_t ClampCoord(double v) noexcept {
  constexpr double kLim = 2'147'483'000.0;
  const double clamped = std::max(-kLim, std::min(kLim, v));
  return static_cast<std::int64_t>(std::floor(clamped));
}

std::uint64_t PackCell(std::int64_t cx, std::int64_t cy) noexcept {
  const auto ux = static_cast<std::uint64_t>(cx + 0x8000'0000LL);
  const auto uy = static_cast<std::uint64_t>(cy + 0x8000'0000LL);
  return (ux << 32) | (uy & 0xffff'ffffULL);
}

}  // namespace

double Distance(Position a, Position b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

Medium::Medium(MediumOptions options)
    : use_grid_(options.use_grid),
      fixed_cell_size_(options.cell_size_m > 0.0) {
  if (fixed_cell_size_) cell_size_ = options.cell_size_m;
}

std::uint64_t Medium::CellKeyFor(Position pos) const noexcept {
  return PackCell(ClampCoord(pos.x / cell_size_),
                  ClampCoord(pos.y / cell_size_));
}

void Medium::InsertIntoCell(NodeId id, NodeInfo& info) {
  info.cell = CellKeyFor(info.pos);
  std::vector<CellEntry>& entries = cells_[info.cell];
  info.slot = static_cast<std::uint32_t>(entries.size());
  entries.push_back(CellEntry{id, info.pos});
}

void Medium::RemoveFromCell(const NodeInfo& info) {
  const auto it = cells_.find(info.cell);
  std::vector<CellEntry>& entries = it->second;
  const std::uint32_t slot = info.slot;
  if (slot + 1 != entries.size()) {
    // Swap-remove: the tail entry changes slots; fix its back-pointer.
    entries[slot] = entries.back();
    nodes_.find(entries[slot].id)->second.slot = slot;
  }
  entries.pop_back();
  if (entries.empty()) cells_.erase(it);
}

void Medium::MaybeResize() {
  if (fixed_cell_size_ || min_range_ <= 0.0) return;
  // Geometric mean balances a short-range radio (BT, 10 m) against a
  // long-range one (WiFi, 100 m): small-range queries stay cheap per
  // cell, large-range queries touch a bounded number of cells.
  const double derived =
      std::clamp(std::sqrt(min_range_ * max_range_), 1.0, 2000.0);
  if (derived == cell_size_) return;
  cell_size_ = derived;
  RebuildGrid();
}

void Medium::RebuildGrid() {
  cells_.clear();
  for (auto& [id, info] : nodes_) InsertIntoCell(id, info);
  PublishGauges();
}

void Medium::PublishGauges() const {
  COBS({
    static obs::Gauge& cells =
        obs::Observability::metrics().GetGauge("medium_grid_cells");
    static obs::Gauge& occupancy =
        obs::Observability::metrics().GetGauge("medium_grid_occupancy");
    static obs::Gauge& cell_size =
        obs::Observability::metrics().GetGauge("medium_grid_cell_size_m");
    cells.Set(static_cast<double>(cells_.size()));
    occupancy.Set(mean_cell_occupancy());
    cell_size.Set(cell_size_);
  });
}

double Medium::mean_cell_occupancy() const noexcept {
  if (cells_.empty()) return 0.0;
  return static_cast<double>(nodes_.size()) /
         static_cast<double>(cells_.size());
}

void Medium::NoteRadioRange(double range_m) {
  if (range_m <= 0.0) return;
  if (min_range_ <= 0.0) {
    min_range_ = max_range_ = range_m;
  } else {
    min_range_ = std::min(min_range_, range_m);
    max_range_ = std::max(max_range_, range_m);
  }
  MaybeResize();
}

NodeId Medium::Register(std::string name, Position pos) {
  const NodeId id = next_id_++;
  NodeInfo& info =
      nodes_.emplace(id, NodeInfo{std::move(name), pos, 0, 0}).first->second;
  InsertIntoCell(id, info);
  PublishGauges();
  return id;
}

void Medium::Unregister(NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  RemoveFromCell(it->second);
  nodes_.erase(it);
  PublishGauges();
}

bool Medium::Exists(NodeId id) const noexcept { return nodes_.contains(id); }

Result<Position> Medium::GetPosition(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return NotFound("node " + std::to_string(id) + " not registered");
  }
  return it->second.pos;
}

Result<std::string> Medium::GetName(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return NotFound("node " + std::to_string(id) + " not registered");
  }
  return it->second.name;
}

Status Medium::SetPosition(NodeId id, Position pos) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return NotFound("node " + std::to_string(id) + " not registered");
  }
  NodeInfo& info = it->second;
  info.pos = pos;
  const std::uint64_t new_cell = CellKeyFor(pos);
  if (new_cell == info.cell) {
    cells_.find(info.cell)->second[info.slot].pos = pos;
    return Status::Ok();
  }
  RemoveFromCell(info);
  InsertIntoCell(id, info);
  return Status::Ok();
}

Result<double> Medium::DistanceBetween(NodeId a, NodeId b) const {
  const auto ia = nodes_.find(a);
  if (ia == nodes_.end()) {
    return NotFound("node " + std::to_string(a) + " not registered");
  }
  const auto ib = nodes_.find(b);
  if (ib == nodes_.end()) {
    return NotFound("node " + std::to_string(b) + " not registered");
  }
  return Distance(ia->second.pos, ib->second.pos);
}

bool Medium::InRange(NodeId a, NodeId b, double range_m) const {
  const auto ia = nodes_.find(a);
  if (ia == nodes_.end()) return false;
  const auto ib = nodes_.find(b);
  if (ib == nodes_.end()) return false;
  return Distance(ia->second.pos, ib->second.pos) <= range_m;
}

std::vector<NodeId> Medium::NodesWithin(
    NodeId center, double range_m,
    const std::function<bool(NodeId)>& filter) const {
  const auto cit = nodes_.find(center);
  if (cit == nodes_.end()) return {};
  const Position cpos = cit->second.pos;

  COBS({
    static obs::Counter& grid_queries =
        obs::Observability::metrics().GetCounter(
            "medium_neighbor_queries_total", {{"backend", "grid"}});
    static obs::Counter& linear_queries =
        obs::Observability::metrics().GetCounter(
            "medium_neighbor_queries_total", {{"backend", "linear"}});
    (use_grid_ ? grid_queries : linear_queries).Inc();
  });

  std::vector<std::pair<double, NodeId>> hits;
  const auto consider = [&](NodeId id, Position pos) {
    if (id == center) return;
    const double d = Distance(cpos, pos);
    if (d <= range_m && (!filter || filter(id))) hits.emplace_back(d, id);
  };

  if (!use_grid_) {
    for (const auto& [id, info] : nodes_) consider(id, info.pos);
  } else {
    const std::int64_t cx0 = ClampCoord((cpos.x - range_m) / cell_size_);
    const std::int64_t cx1 = ClampCoord((cpos.x + range_m) / cell_size_);
    const std::int64_t cy0 = ClampCoord((cpos.y - range_m) / cell_size_);
    const std::int64_t cy1 = ClampCoord((cpos.y + range_m) / cell_size_);
    const double span_x = static_cast<double>(cx1 - cx0 + 1);
    const double span_y = static_cast<double>(cy1 - cy0 + 1);
    if (span_x * span_y > static_cast<double>(cells_.size())) {
      // The range covers more cells than exist: walking every occupied
      // cell is cheaper (and bounded by N) — e.g. an "everything" query.
      for (const auto& [key, entries] : cells_) {
        for (const CellEntry& e : entries) consider(e.id, e.pos);
      }
    } else {
      for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
        for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
          const auto cell = cells_.find(PackCell(cx, cy));
          if (cell == cells_.end()) continue;
          for (const CellEntry& e : cell->second) consider(e.id, e.pos);
        }
      }
    }
  }

  // Deterministic order: nearest first, distance ties broken by ascending
  // NodeId (spelled out, not left to pair's lexicographic operator<, so
  // the contract survives refactors of the hit representation). This is
  // what makes the grid and the linear oracle byte-identical.
  std::sort(hits.begin(), hits.end(),
            [](const std::pair<double, NodeId>& a,
               const std::pair<double, NodeId>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  std::vector<NodeId> out;
  out.reserve(hits.size());
  for (const auto& [d, id] : hits) out.push_back(id);
  return out;
}

std::vector<NodeId> Medium::AllNodes() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, info] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace contory::net
