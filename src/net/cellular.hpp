// Simulated cellular data (GPRS/UMTS) — the extInfra transport.
//
// The paper's extInfra numbers are shaped by three effects we model
// explicitly:
//  * connection-open cost: "the maximum power consumption, which
//    corresponds to when the connection is opened and the request for the
//    item is sent, is 1000 mW" and latencies "ranging from 703 msec up to
//    2766 msec" — a heavy-tailed (lognormal) setup time;
//  * radio tail energy: after the transfer, the radio lingers in
//    high-power states (DCH tail, then FACH) before returning to idle —
//    this is what makes one on-demand UMTS item cost 14 J while "sending
//    and retrieving larger groups of items in the same time slot largely
//    reduces the energy consumption per item";
//  * idle paging peaks (450-481 mW every 50-60 s) once the GSM radio is
//    on — those are owned by phone::SmartPhone and show up in Fig. 4.
//
// CellularNetwork is the operator core + internet: servers register by
// address; modems send request/response exchanges and can receive pushes
// (the event-notification channel the Fuego middleware provides).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "net/medium.hpp"
#include "phone/smart_phone.hpp"
#include "sim/simulation.hpp"

namespace contory::net {

class CellularModem;

/// The operator core network plus the fixed internet behind it.
class CellularNetwork {
 public:
  explicit CellularNetwork(sim::Simulation& sim) : sim_(sim) {}

  /// A server's request handler: must eventually call `respond` exactly
  /// once (immediately or later) with the response payload.
  using Respond = std::function<void(std::vector<std::byte>)>;
  using ServerHandler = std::function<void(
      NodeId from, const std::vector<std::byte>& request, Respond respond)>;

  Status RegisterServer(const std::string& address, ServerHandler handler);
  void UnregisterServer(const std::string& address);
  [[nodiscard]] bool HasServer(const std::string& address) const noexcept;

  /// Pushes an asynchronous notification to a client modem (event-based
  /// interface). Fails if the client is unknown or its radio is off.
  Status PushToClient(NodeId client, std::vector<std::byte> payload);

 private:
  friend class CellularModem;
  void Attach(NodeId id, CellularModem* modem) { modems_[id] = modem; }
  void Detach(NodeId id) { modems_.erase(id); }
  [[nodiscard]] ServerHandler* FindServer(const std::string& address);

  sim::Simulation& sim_;
  std::unordered_map<std::string, ServerHandler> servers_;
  std::unordered_map<NodeId, CellularModem*> modems_;
};

/// Radio-resource-control states of the modem.
enum class RrcState { kIdle, kConnecting, kDch, kDchTail, kFach };

[[nodiscard]] const char* RrcStateName(RrcState s) noexcept;

class CellularModem {
 public:
  CellularModem(sim::Simulation& sim, phone::SmartPhone& phone,
                CellularNetwork& network, NodeId node);
  ~CellularModem();

  CellularModem(const CellularModem&) = delete;
  CellularModem& operator=(const CellularModem&) = delete;

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] RrcState rrc_state() const noexcept { return state_; }

  /// Powers the GSM/UMTS radio; also drives the phone's paging bursts.
  void SetRadioOn(bool on);
  [[nodiscard]] bool radio_on() const noexcept { return radio_on_; }

  /// Failure injection: fraction of connection attempts that fail (models
  /// the 2G/3G handover and coverage problems the field trial hit).
  void SetConnectFailureRate(double rate) noexcept {
    connect_failure_rate_ = rate;
  }
  [[nodiscard]] double connect_failure_rate() const noexcept {
    return connect_failure_rate_;
  }

  /// Failure injection: fraction of in-flight request exchanges that abort
  /// mid-transfer (bearer drop during a handover). Unlike the connect
  /// failure above, this hits sends that already reached DCH, so callers
  /// see kUnavailable partway through the uplink — the case provider
  /// retry policies must absorb.
  void SetTransferAbortRate(double rate) noexcept {
    transfer_abort_rate_ = rate;
  }
  [[nodiscard]] double transfer_abort_rate() const noexcept {
    return transfer_abort_rate_;
  }

  /// Sends `request` to the server at `address` and reports the response
  /// (or failure) via `done`. Latency and energy follow the RRC machine:
  /// connection setup if idle, uplink air time, server turnaround,
  /// downlink air time, then tail decay.
  void SendRequest(const std::string& address, std::vector<std::byte> request,
                   std::function<void(Result<std::vector<std::byte>>)> done,
                   SimDuration timeout = std::chrono::seconds{30});

  /// Handler for server-initiated pushes (event notifications).
  using PushHandler = std::function<void(const std::vector<std::byte>&)>;
  void SetPushHandler(PushHandler handler) {
    push_handler_ = std::move(handler);
  }

  /// Air time of a payload over the UMTS bearer.
  [[nodiscard]] SimDuration TransferTime(std::size_t bytes) const;

 private:
  friend class CellularNetwork;
  void DeliverPush(std::vector<std::byte> payload);

  /// Brings the radio to DCH, then runs `ready` (Status::Ok) or reports
  /// why it could not (radio off, connect failure).
  void EnsureDch(std::function<void(Status)> ready);
  void EnterState(RrcState s);
  /// (Re)arms the DCH->DchTail->FACH->Idle decay; any activity calls this.
  void ArmDecay();
  void CancelDecay();

  sim::Simulation& sim_;
  phone::SmartPhone& phone_;
  CellularNetwork& network_;
  NodeId node_;
  bool radio_on_ = false;
  RrcState state_ = RrcState::kIdle;
  double connect_failure_rate_ = 0.0;
  double transfer_abort_rate_ = 0.0;
  PushHandler push_handler_;
  std::deque<std::function<void(Status)>> connect_waiters_;
  int in_flight_ = 0;  // active request/push exchanges (defer decay)
  sim::TimerId decay_timer_ = sim::kInvalidTimer;
};

}  // namespace contory::net
