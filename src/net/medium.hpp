// Shared radio medium: node positions and range queries.
//
// Every radio-equipped entity (phone, BT-GPS receiver, communicator)
// registers as a node with a 2-D position; radio models ask the medium
// which peers are in range. Mobility (sailing boats) is expressed by
// updating positions over simulated time.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace contory::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0;

struct Position {
  double x = 0.0;  // meters
  double y = 0.0;  // meters
};

[[nodiscard]] double Distance(Position a, Position b) noexcept;

class Medium {
 public:
  /// Registers a node; ids are dense and deterministic (1, 2, 3, ...).
  NodeId Register(std::string name, Position pos);

  /// Removes a node (e.g. a switched-off device). Range queries no longer
  /// see it; its id is never reused.
  void Unregister(NodeId id);

  [[nodiscard]] bool Exists(NodeId id) const noexcept;
  [[nodiscard]] Result<Position> GetPosition(NodeId id) const;
  [[nodiscard]] Result<std::string> GetName(NodeId id) const;
  Status SetPosition(NodeId id, Position pos);

  /// Distance between two registered nodes (error if either is gone).
  [[nodiscard]] Result<double> DistanceBetween(NodeId a, NodeId b) const;

  /// True when both exist and are within `range_m` of each other.
  [[nodiscard]] bool InRange(NodeId a, NodeId b, double range_m) const;

  /// All other nodes within `range_m` of `center`, nearest first; exact
  /// distance ties break by ascending NodeId (deterministic order even
  /// for equidistant peers). Optionally filtered by a predicate.
  [[nodiscard]] std::vector<NodeId> NodesWithin(
      NodeId center, double range_m,
      const std::function<bool(NodeId)>& filter = {}) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// All currently registered node ids, ascending.
  [[nodiscard]] std::vector<NodeId> AllNodes() const;

 private:
  struct NodeInfo {
    std::string name;
    Position pos;
  };
  std::unordered_map<NodeId, NodeInfo> nodes_;
  NodeId next_id_ = 1;
};

}  // namespace contory::net
