// Shared radio medium: node positions and range queries.
//
// Every radio-equipped entity (phone, BT-GPS receiver, communicator)
// registers as a node with a 2-D position; radio models ask the medium
// which peers are in range. Mobility (sailing boats, city commuters) is
// expressed by updating positions over simulated time.
//
// Range queries run against a uniform spatial hash grid so that a city
// of 100k moving nodes stays O(neighbors) per query instead of O(N).
// The grid is an index only: NodesWithin's result contract — nearest
// first, exact distance ties broken by ascending NodeId — is identical
// to the brute-force scan, which remains available behind `set_use_grid
// (false)` as the property-test oracle. Cell size is derived from the
// radio ranges the protocol models register via NoteRadioRange.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace contory::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0;

struct Position {
  double x = 0.0;  // meters
  double y = 0.0;  // meters
};

[[nodiscard]] double Distance(Position a, Position b) noexcept;

struct MediumOptions {
  /// Answer range queries from the spatial grid. OFF selects the linear
  /// scan over every registered node — the semantics oracle for tests.
  bool use_grid = true;
  /// Fixed grid cell edge in meters; 0 = derive from NoteRadioRange
  /// hints (geometric mean of the smallest and largest noted range,
  /// clamped to [1, 2000]; 100 m before any radio registers).
  double cell_size_m = 0.0;
};

class Medium {
 public:
  explicit Medium(MediumOptions options = {});

  /// Registers a node; ids are dense and deterministic (1, 2, 3, ...).
  NodeId Register(std::string name, Position pos);

  /// Removes a node (e.g. a switched-off device). Range queries no longer
  /// see it; its id is never reused.
  void Unregister(NodeId id);

  [[nodiscard]] bool Exists(NodeId id) const noexcept;
  [[nodiscard]] Result<Position> GetPosition(NodeId id) const;
  [[nodiscard]] Result<std::string> GetName(NodeId id) const;
  /// Moves a node. The grid migrates the node between cells
  /// incrementally (O(1)); same-cell moves only rewrite the slot.
  Status SetPosition(NodeId id, Position pos);

  /// Distance between two registered nodes (error if either is gone).
  [[nodiscard]] Result<double> DistanceBetween(NodeId a, NodeId b) const;

  /// True when both exist and are within `range_m` of each other.
  /// Single-pass: two raw map probes, no Result plumbing — this is the
  /// per-packet hot path for both radios.
  [[nodiscard]] bool InRange(NodeId a, NodeId b, double range_m) const;

  /// All other nodes within `range_m` of `center`, nearest first; exact
  /// distance ties break by ascending NodeId (deterministic order even
  /// for equidistant peers). Optionally filtered by a predicate; the
  /// predicate only ever sees in-range nodes, but the order in which it
  /// is consulted is unspecified (the result order is not).
  [[nodiscard]] std::vector<NodeId> NodesWithin(
      NodeId center, double range_m,
      const std::function<bool(NodeId)>& filter = {}) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

  /// All currently registered node ids, ascending.
  [[nodiscard]] std::vector<NodeId> AllNodes() const;

  // --- Spatial index ----------------------------------------------------

  /// Radio models call this with their configured range at construction;
  /// in auto mode the grid re-derives its cell size from the noted
  /// min/max and rebuilds when it changes. Results never change, only
  /// query cost.
  void NoteRadioRange(double range_m);

  /// Switches between the grid and the linear oracle at runtime. The
  /// grid index is maintained either way, so flipping is O(1).
  void set_use_grid(bool use_grid) noexcept { use_grid_ = use_grid; }
  [[nodiscard]] bool use_grid() const noexcept { return use_grid_; }
  [[nodiscard]] double cell_size_m() const noexcept { return cell_size_; }
  [[nodiscard]] std::size_t occupied_cells() const noexcept {
    return cells_.size();
  }
  /// Mean nodes per occupied cell (0 when empty) — the occupancy gauge.
  [[nodiscard]] double mean_cell_occupancy() const noexcept;

 private:
  struct NodeInfo {
    std::string name;
    Position pos;
    std::uint64_t cell = 0;   // current cell key
    std::uint32_t slot = 0;   // index into that cell's entry vector
  };
  struct CellEntry {
    NodeId id;
    Position pos;  // mirrored so queries never probe nodes_ per candidate
  };

  [[nodiscard]] std::uint64_t CellKeyFor(Position pos) const noexcept;
  void InsertIntoCell(NodeId id, NodeInfo& info);
  void RemoveFromCell(const NodeInfo& info);
  /// Re-derives the cell size from the noted ranges; rebuilds the grid
  /// when the derived size changes.
  void MaybeResize();
  void RebuildGrid();
  void PublishGauges() const;

  std::unordered_map<NodeId, NodeInfo> nodes_;
  std::unordered_map<std::uint64_t, std::vector<CellEntry>> cells_;
  NodeId next_id_ = 1;
  bool use_grid_ = true;
  bool fixed_cell_size_ = false;
  double cell_size_ = 100.0;
  double min_range_ = 0.0;  // 0 = no range noted yet
  double max_range_ = 0.0;
};

}  // namespace contory::net
