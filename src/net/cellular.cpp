#include "net/cellular.hpp"

#include <utility>

#include "common/logging.hpp"
#include "obs/observability.hpp"

namespace contory::net {
namespace {
constexpr const char* kModule = "cell";
constexpr const char* kRrc = "cell.rrc";
/// FACH -> DCH promotion is much cheaper than a cold connect.
constexpr SimDuration kFachPromotion = std::chrono::milliseconds{420};
}  // namespace

const char* RrcStateName(RrcState s) noexcept {
  switch (s) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kConnecting: return "CONNECTING";
    case RrcState::kDch: return "DCH";
    case RrcState::kDchTail: return "DCH_TAIL";
    case RrcState::kFach: return "FACH";
  }
  return "?";
}

Status CellularNetwork::RegisterServer(const std::string& address,
                                       ServerHandler handler) {
  if (!handler) return InvalidArgument("null server handler");
  if (servers_.contains(address)) {
    return AlreadyExists("server already registered at " + address);
  }
  servers_.emplace(address, std::move(handler));
  return Status::Ok();
}

void CellularNetwork::UnregisterServer(const std::string& address) {
  servers_.erase(address);
}

bool CellularNetwork::HasServer(const std::string& address) const noexcept {
  return servers_.contains(address);
}

CellularNetwork::ServerHandler* CellularNetwork::FindServer(
    const std::string& address) {
  const auto it = servers_.find(address);
  return it == servers_.end() ? nullptr : &it->second;
}

Status CellularNetwork::PushToClient(NodeId client,
                                     std::vector<std::byte> payload) {
  const auto it = modems_.find(client);
  if (it == modems_.end()) {
    return NotFound("no modem for node " + std::to_string(client));
  }
  if (!it->second->radio_on()) {
    return Unavailable("client radio is off");
  }
  it->second->DeliverPush(std::move(payload));
  return Status::Ok();
}

CellularModem::CellularModem(sim::Simulation& sim, phone::SmartPhone& phone,
                             CellularNetwork& network, NodeId node)
    : sim_(sim), phone_(phone), network_(network), node_(node) {
  network_.Attach(node_, this);
}

CellularModem::~CellularModem() {
  CancelDecay();
  network_.Detach(node_);
}

void CellularModem::SetRadioOn(bool on) {
  if (radio_on_ == on) return;
  radio_on_ = on;
  phone_.SetGsmRadioOn(on);
  if (!on) {
    CancelDecay();
    EnterState(RrcState::kIdle);
    // Pending connects fail.
    auto waiters = std::move(connect_waiters_);
    connect_waiters_.clear();
    for (auto& w : waiters) w(Unavailable("radio switched off"));
  }
}

SimDuration CellularModem::TransferTime(std::size_t bytes) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  return FromSeconds(bits / phone_.profile().cell_throughput_bps);
}

void CellularModem::EnterState(RrcState s) {
  if (state_ == s) return;
  state_ = s;
  const auto& p = phone_.profile();
  double mw = 0.0;
  switch (s) {
    case RrcState::kIdle: mw = 0.0; break;
    case RrcState::kConnecting: mw = p.cell_connect_power_mw; break;
    case RrcState::kDch: mw = p.cell_dch_power_mw; break;
    case RrcState::kDchTail: mw = p.cell_dch_tail_power_mw; break;
    case RrcState::kFach: mw = p.cell_fach_power_mw; break;
  }
  phone_.energy().SetComponentPower(kRrc, mw);
  // While a dedicated/shared channel is up, the phone is not doing idle
  // paging wakeups on the side.
  phone_.SetPagingSuppressed(s != RrcState::kIdle);
  CLOG_DEBUG(kModule, "node %u RRC -> %s", node_, RrcStateName(s));
}

void CellularModem::CancelDecay() {
  if (decay_timer_ != sim::kInvalidTimer) {
    sim_.Cancel(decay_timer_);
    decay_timer_ = sim::kInvalidTimer;
  }
}

void CellularModem::ArmDecay() {
  CancelDecay();
  if (in_flight_ > 0 || state_ == RrcState::kIdle) return;
  const auto& p = phone_.profile();
  if (state_ == RrcState::kDch || state_ == RrcState::kDchTail) {
    EnterState(RrcState::kDchTail);
    decay_timer_ = sim_.ScheduleAfter(p.cell_dch_tail, [this] {
      decay_timer_ = sim::kInvalidTimer;
      if (in_flight_ > 0) return;
      EnterState(RrcState::kFach);
      ArmDecay();
    }, "cell.dch_tail");
  } else if (state_ == RrcState::kFach) {
    decay_timer_ = sim_.ScheduleAfter(p.cell_fach_tail, [this] {
      decay_timer_ = sim::kInvalidTimer;
      if (in_flight_ > 0) return;
      EnterState(RrcState::kIdle);
    }, "cell.fach_tail");
  }
}

void CellularModem::EnsureDch(std::function<void(Status)> ready) {
  if (!radio_on_) {
    ready(Unavailable("cellular radio is off"));
    return;
  }
  CancelDecay();
  switch (state_) {
    case RrcState::kDch:
    case RrcState::kDchTail:
      EnterState(RrcState::kDch);
      ready(Status::Ok());
      return;
    case RrcState::kConnecting:
      connect_waiters_.push_back(std::move(ready));
      return;
    case RrcState::kFach: {
      EnterState(RrcState::kConnecting);
      connect_waiters_.push_back(std::move(ready));
      sim_.ScheduleAfter(kFachPromotion, [this] {
        if (state_ != RrcState::kConnecting) return;
        EnterState(RrcState::kDch);
        auto waiters = std::move(connect_waiters_);
        connect_waiters_.clear();
        for (auto& w : waiters) w(Status::Ok());
      }, "cell.promote");
      return;
    }
    case RrcState::kIdle: {
      EnterState(RrcState::kConnecting);
      connect_waiters_.push_back(std::move(ready));
      const auto& p = phone_.profile();
      // Cold connect: heavy-tailed, "ranging from 703 msec up to 2766".
      const double ms =
          phone_.rng().LogNormal(p.cell_connect_mu_ms, p.cell_connect_sigma);
      const bool fails = phone_.rng().Bernoulli(connect_failure_rate_);
      sim_.ScheduleAfter(FromMillis(ms), [this, fails] {
        if (state_ != RrcState::kConnecting) return;
        auto waiters = std::move(connect_waiters_);
        connect_waiters_.clear();
        if (fails) {
          EnterState(RrcState::kIdle);
          for (auto& w : waiters) {
            w(Unavailable("connection setup failed (handover/coverage)"));
          }
          return;
        }
        EnterState(RrcState::kDch);
        for (auto& w : waiters) w(Status::Ok());
      }, "cell.connect");
      return;
    }
  }
}

void CellularModem::SendRequest(
    const std::string& address, std::vector<std::byte> request,
    std::function<void(Result<std::vector<std::byte>>)> done,
    SimDuration timeout) {
  if (!done) return;
  // Shared completion state so the timeout and the response race safely.
  struct Pending {
    bool finished = false;
    std::function<void(Result<std::vector<std::byte>>)> done;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);

  ++in_flight_;
  auto finish = [this, pending](Result<std::vector<std::byte>> result) {
    if (pending->finished) return;
    pending->finished = true;
    --in_flight_;
    ArmDecay();
    pending->done(std::move(result));
  };

  sim_.ScheduleAfter(timeout, [finish] {
    finish(DeadlineExceeded("no response from infrastructure"));
  }, "cell.timeout");

  EnsureDch([this, address, request = std::move(request), finish](
                Status s) mutable {
    if (!s.ok()) {
      finish(std::move(s));
      return;
    }
    auto* handler = network_.FindServer(address);
    if (handler == nullptr) {
      finish(NotFound("no server at " + address));
      return;
    }
    // Uplink air time, then server turnaround, then the server's reply
    // comes back over the downlink.
    const SimDuration uplink = TransferTime(request.size());
    // Injected mid-transfer abort: the bearer drops partway through the
    // uplink (handover). Drawn only when an abort window is active so the
    // rng stream of fault-free runs is unchanged.
    if (transfer_abort_rate_ > 0.0 &&
        phone_.rng().Bernoulli(transfer_abort_rate_)) {
      const auto partial = SimDuration{static_cast<std::int64_t>(
          static_cast<double>(uplink.count()) * phone_.rng().NextDouble())};
      sim_.ScheduleAfter(partial, [finish] {
        finish(Unavailable("bearer lost mid-transfer (handover)"));
      }, "cell.abort");
      return;
    }
    COBS({
      static obs::Counter& frames = obs::Observability::metrics().GetCounter(
          "radio_tx_frames_total", {{"radio", "cellular"}});
      static obs::Counter& bytes = obs::Observability::metrics().GetCounter(
          "radio_tx_bytes_total", {{"radio", "cellular"}});
      frames.Inc();
      bytes.Inc(request.size());
    });
    sim_.ScheduleAfter(
        uplink + phone_.profile().cell_server_turnaround,
        [this, handler, request = std::move(request), finish]() mutable {
          (*handler)(node_, request,
                     [this, finish](std::vector<std::byte> response) {
                       const SimDuration downlink =
                           TransferTime(response.size());
                       sim_.ScheduleAfter(
                           downlink,
                           [finish, response = std::move(response)]() mutable {
                             finish(std::move(response));
                           },
                           "cell.downlink");
                     });
        },
        "cell.uplink");
  });
}

void CellularModem::DeliverPush(std::vector<std::byte> payload) {
  ++in_flight_;
  EnsureDch([this, payload = std::move(payload)](Status s) mutable {
    if (!s.ok()) {
      --in_flight_;
      ArmDecay();
      return;
    }
    const SimDuration downlink = TransferTime(payload.size());
    sim_.ScheduleAfter(downlink, [this, payload = std::move(payload)] {
      --in_flight_;
      ArmDecay();
      if (push_handler_) push_handler_(payload);
    }, "cell.push");
  });
}

}  // namespace contory::net
