// Control-policy demo: contextRules steering provisioning at runtime.
//
// "a control policy can specify the maximum level of memory and power
// consumption that should be tolerated at runtime ... the activation of
// the reducePower action can cause the suspension or termination of high
// energy-consuming queries (e.g., those using the 2G/3GReference)"
// (Sec. 4.3).
//
// A phone runs an expensive periodic extInfra query. As the battery
// drains past the policy threshold, the reducePower rule fires: the UMTS
// query is suspended and re-provisioned over the cheap ad hoc network.
//
// Run: ./build/examples/policy_demo
#include <cstdio>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

class NarratingApp : public core::Client {
 public:
  explicit NarratingApp(testbed::World& world) : world_(world) {}
  void ReceiveCxtItem(const CxtItem& item) override {
    ++items_;
    if (item.source.kind != last_kind_) {
      std::printf("%s items now arriving via %s\n",
                  FormatTime(world_.Now()).c_str(),
                  SourceKindName(item.source.kind));
      last_kind_ = item.source.kind;
    }
  }
  void InformError(const std::string& msg) override {
    std::printf("%s middleware: %s\n", FormatTime(world_.Now()).c_str(),
                msg.c_str());
  }
  bool MakeDecision(const std::string&) override { return true; }
  [[nodiscard]] int items() const { return items_; }

 private:
  testbed::World& world_;
  int items_ = 0;
  SourceKind last_kind_ = SourceKind::kUnknown;
};

}  // namespace

int main() {
  std::printf("Contory control-policy demo\n");
  std::printf("===========================\n\n");

  testbed::World world{660};
  // Shrink the battery so the threshold crossing happens in minutes: a
  // nearly-empty cell with ~350 J usable.
  testbed::DeviceOptions opts;
  opts.name = "phone-A";
  opts.infra_address = "infra.dynamos.fi";
  opts.factory_config.resources.battery_capacity_joules = 350.0;
  auto& device = world.AddDevice(opts);
  auto& server = world.AddContextServer("infra.dynamos.fi");

  // Infrastructure data plus a neighbor publishing the same type over BT.
  sim::PeriodicTask feed{world.sim(), 30s, [&] {
    CxtItem item;
    item.id = world.sim().ids().NextId("station");
    item.type = vocab::kTemperature;
    item.value = 17.5;
    item.timestamp = world.Now();
    item.metadata.accuracy = 0.1;
    server.StoreDirect({item, "weather-station", std::nullopt});
  }};
  testbed::DeviceOptions nb_opts;
  nb_opts.name = "phone-B";
  nb_opts.position = {5, 0};
  nb_opts.with_cellular = false;
  auto& neighbor = world.AddDevice(nb_opts);
  core::CollectingClient nb_app;
  (void)neighbor.contory().RegisterCxtServer(nb_app);
  sim::PeriodicTask nb_publish{world.sim(), 20s, [&] {
    CxtItem item;
    item.id = world.sim().ids().NextId("nb");
    item.type = vocab::kTemperature;
    item.value = 17.9;
    item.timestamp = world.Now();
    item.metadata.accuracy = 0.5;
    (void)neighbor.contory().PublishCxtItem(item, true);
  }};

  // The policy, in the CxtRulesVocabulary's own words.
  const auto rule = core::ParseContextRule(
      "IF batteryLevel equal low THEN reducePower");
  if (!rule.ok()) {
    std::printf("rule parse error: %s\n", rule.status().ToString().c_str());
    return 1;
  }
  device.contory().AddControlPolicy(*rule);
  std::printf("policy installed: %s\n\n", rule->name.c_str());

  NarratingApp app{world};
  auto q = query::ParseQuery(
      "SELECT temperature FROM extInfra DURATION 30 min EVERY 60 sec");
  q->id = world.sim().ids().NextId("q");
  const auto id = device.contory().ProcessCxtQuery(*q, app);
  if (!id.ok()) {
    std::printf("submit failed: %s\n", id.status().ToString().c_str());
    return 1;
  }
  std::printf("t=0: periodic extInfra query running (UMTS, ~0.5 W while "
              "active)\n");

  bool reported_low = false;
  for (int minute = 1; minute <= 30; ++minute) {
    world.RunFor(1min);
    const double pct = device.contory().resources().BatteryPercent();
    if (!reported_low &&
        device.contory().resources().BatteryLevel() == "low") {
      std::printf("%s battery dropped to %.0f%% -> '%s'\n",
                  FormatTime(world.Now()).c_str(), pct,
                  device.contory().resources().BatteryLevel().c_str());
      reported_low = true;
    }
  }

  const bool reduce_power_active =
      device.contory().active_actions().contains(
          core::RuleAction::kReducePower);
  std::printf("\nreducePower active: %s\n",
              reduce_power_active ? "yes" : "no");
  std::printf("items delivered: %d\n", app.items());
  std::printf("remaining battery: %.0f%%\n",
              device.contory().resources().BatteryPercent());
  std::printf("extInfra providers still running: %zu (suspended by "
              "policy)\n",
              device.contory()
                  .facade(query::SourceSel::kExtInfra)
                  .active_provider_count());
  return reduce_power_active ? 0 : 1;
}
