// RegattaClassifier (Sec. 6.2): "during a regatta competition, this
// service constantly provides an updated classification of the current
// winner of the regatta. Virtual checkpoints can be arranged along the
// route ... Each time a boat reaches a checkpoint, the RegattaClassifier
// running on the phone's participant communicates to the infrastructure
// location and speed of the boat (collected using GPS sensors). The
// infrastructure processes this information and provides each participant
// with an updated classification."
//
// Scenario: three boats race along a 3-checkpoint course. Each boat runs
// Contory with a periodic location query served by its BT-GPS; the
// classifier app reports fixes to the RegattaService over UMTS and
// subscribes to pushed standings.
//
// Run: ./build/examples/regatta_classifier
#include <cstdio>

#include "core/contory.hpp"
#include "infra/regatta_service.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

constexpr const char* kRegattaAddress = "regatta.dynamos.fi";

/// The phone-side RegattaClassifier app: a Contory client that forwards
/// GPS fixes to the infrastructure and renders pushed standings.
class RegattaApp : public core::Client {
 public:
  RegattaApp(std::string boat, testbed::Device& device)
      : boat_(std::move(boat)), device_(device) {
    // Receive pushed standings over the event-based interface.
    device_.contory().cellular_reference().SetTopicHandler(
        "regatta.standings", [this](const infra::Event& event) {
          ByteReader r{event.payload};
          const auto standings = infra::DecodeStandings(r);
          if (standings.ok()) latest_standings_ = *standings;
        });
    // Subscribe at the service.
    ByteWriter w;
    w.WriteU8(static_cast<std::uint8_t>(infra::RegattaOp::kSubscribe));
    device_.contory().cellular_reference().SendRequest(
        kRegattaAddress, std::move(w).Take(),
        [](Result<std::vector<std::byte>>) {});
  }

  void ReceiveCxtItem(const CxtItem& item) override {
    const auto geo = item.value.AsGeo();
    if (!geo.ok()) return;
    // Report location + speed to the infrastructure.
    ByteWriter w;
    w.WriteU8(static_cast<std::uint8_t>(infra::RegattaOp::kReport));
    w.WriteString(boat_);
    w.WriteF64(geo->lat);
    w.WriteF64(geo->lon);
    w.WriteF64(last_speed_);
    if (w.size() < infra::kEventNotificationBytes) {
      w.WritePadding(infra::kEventNotificationBytes - w.size());
    }
    device_.contory().cellular_reference().SendRequest(
        kRegattaAddress, std::move(w).Take(),
        [](Result<std::vector<std::byte>>) {});
  }
  void InformError(const std::string& msg) override {
    std::printf("  [%s] note: %s\n", boat_.c_str(), msg.c_str());
  }
  bool MakeDecision(const std::string&) override { return true; }

  void set_speed(double knots) { last_speed_ = knots; }
  [[nodiscard]] const std::vector<infra::RegattaStanding>& standings()
      const {
    return latest_standings_;
  }

 private:
  std::string boat_;
  testbed::Device& device_;
  double last_speed_ = 0.0;
  std::vector<infra::RegattaStanding> latest_standings_;
};

void PrintStandings(const std::vector<infra::RegattaStanding>& standings) {
  if (standings.empty()) {
    std::printf("  (no standings yet)\n");
    return;
  }
  int place = 1;
  for (const auto& s : standings) {
    std::printf("  %d. %-8s checkpoints %d  last pass %s  avg %.1f kt\n",
                place++, s.boat.c_str(), s.checkpoints_passed,
                FormatTime(s.last_passage).c_str(), s.avg_speed_knots);
  }
}

}  // namespace

int main() {
  std::printf("RegattaClassifier (sailing scenario)\n");
  std::printf("====================================\n\n");

  testbed::World world{1906};

  // Course: three checkpoints along the fleet's heading (the boats sail
  // east with a 0.263 northward drift), ~620 m apart.
  const std::vector<GeoPoint> checkpoints = {
      sensors::ToGeo({600, 158}),
      sensors::ToGeo({1200, 316}),
      sensors::ToGeo({1800, 474}),
  };
  world.AddRegattaService(kRegattaAddress, checkpoints, 150.0);

  // Three boats with different speeds (m/s), each with a phone + BT-GPS.
  struct Boat {
    const char* name;
    double speed_mps;
    testbed::Device* device = nullptr;
    sensors::GpsDevice* gps = nullptr;
    std::unique_ptr<RegattaApp> app;
    net::Position pos{0, 0};
  };
  std::vector<Boat> boats(3);
  boats[0].name = "Aurora";
  boats[0].speed_mps = 4.5;
  boats[1].name = "Borea";
  boats[1].speed_mps = 3.8;
  boats[2].name = "Sirocco";
  boats[2].speed_mps = 4.1;

  for (std::size_t i = 0; i < boats.size(); ++i) {
    Boat& boat = boats[i];
    testbed::DeviceOptions opts;
    opts.name = boat.name;
    opts.position = {0, static_cast<double>(i) * 30.0};
    auto& device = world.AddDevice(opts);
    boat.device = &device;
    boat.pos = opts.position;
    boat.gps = &world.AddGps(std::string(boat.name) + "-gps",
                             {2, opts.position.y});
    boat.app = std::make_unique<RegattaApp>(boat.name, device);
    boat.app->set_speed(boat.speed_mps * 1.9438);

    // Periodic location query served by the BT-GPS.
    auto q = query::QueryBuilder(vocab::kLocation)
                 .FromIntSensor()
                 .For(40min)
                 .Every(15s)
                 .Build();
    q.id = world.sim().ids().NextId("q");
    const auto id = device.contory().ProcessCxtQuery(q, *boat.app);
    if (!id.ok()) {
      std::printf("submit failed for %s: %s\n", boat.name,
                  id.status().ToString().c_str());
      return 1;
    }
  }

  // Sail: boats move along the course; GPS devices track their boats.
  sim::PeriodicTask mover{world.sim(), 5s, [&] {
    for (Boat& boat : boats) {
      const double d = boat.speed_mps * 5.0;
      // Head toward the course line (simple eastward + drift north).
      boat.pos.x += d * 0.95;
      boat.pos.y += d * 0.25;
      boat.device->MoveTo(boat.pos);
      (void)world.medium().SetPosition(boat.gps->node(),
                                       {boat.pos.x + 2, boat.pos.y});
    }
  }};

  for (int quarter = 1; quarter <= 4; ++quarter) {
    world.RunFor(10min);
    std::printf("\nstandings after %d min:\n", quarter * 10);
    PrintStandings(boats[0].app->standings());
  }

  std::printf("\nfinal classification (winner first):\n");
  PrintStandings(boats[0].app->standings());
  const bool got_standings = !boats[0].app->standings().empty();
  std::printf("\n%s\n", got_standings
                            ? "RegattaClassifier delivered live standings."
                            : "no standings received!");
  return got_standings ? 0 : 1;
}
