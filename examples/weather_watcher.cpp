// WeatherWatcher (Sec. 6.2): "it allows users to retrieve weather
// information in a certain geographical region ... the information owned
// by boats currently sailing in such a region is often more reliable than
// the one provided by official weather stations. Once the user has issued
// a weather request, if the target region is not dense enough or too far
// away to support multi-hop ad hoc network provisioning, the query is
// sent to the remote infrastructure."
//
// Scenario: a small fleet sails the Helsinki archipelago. Boats publish
// their local wind/temperature readings into the ad hoc network and
// report them to the DYNAMOS repository over UMTS. The user asks for the
// weather (a) near her own boat — served from the ad hoc network — and
// (b) at a guest harbor 8 km away — too far for the MANET, so the
// WeatherWatcher falls back to the infrastructure.
//
// Run: ./build/examples/weather_watcher
#include <cstdio>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

class WeatherApp : public core::Client {
 public:
  explicit WeatherApp(std::string name) : name_(std::move(name)) {}
  void ReceiveCxtItem(const CxtItem& item) override {
    std::printf("  [%s] %s\n", name_.c_str(), item.ToString().c_str());
    ++items;
  }
  void InformError(const std::string& msg) override {
    std::printf("  [%s] note: %s\n", name_.c_str(), msg.c_str());
  }
  bool MakeDecision(const std::string&) override { return true; }
  int items = 0;

 private:
  std::string name_;
};

/// The WeatherWatcher service logic: decide between ad hoc and
/// infrastructure provisioning for a region-targeted weather query.
query::CxtQuery BuildWeatherQuery(testbed::Device& device,
                                  const std::string& type,
                                  GeoPoint region_center, double radius_m,
                                  int max_hops) {
  // "if the target region is not dense enough or too far away to support
  // multi-hop ad hoc network provisioning, the query is sent to the
  // remote infrastructure."
  const auto hops =
      device.contory().wifi_reference().DistanceToType(type);
  const net::Position here = device.position();
  const double distance_m =
      net::Distance(here, sensors::FromGeo(region_center));
  const bool adhoc_feasible =
      hops.ok() && *hops <= max_hops && distance_m < max_hops * 100.0;

  query::QueryBuilder builder{type};
  if (adhoc_feasible) {
    std::printf(
        "  [watcher] region reachable over the MANET (%d hop(s)); using "
        "adHocNetwork\n",
        hops.ok() ? *hops : -1);
    builder.FromAdHoc(query::AdHocScope::kAllNodes, max_hops);
  } else {
    std::printf(
        "  [watcher] region %.1f km away / MANET too sparse; using "
        "extInfra\n",
        distance_m / 1000.0);
    builder.FromExtInfra().TargetRegion(region_center, radius_m);
  }
  return builder.Freshness(10min).For(1min).Build();
}

}  // namespace

int main() {
  std::printf("WeatherWatcher (sailing scenario)\n");
  std::printf("=================================\n\n");

  testbed::World world{1707};
  world.AddContextServer("infra.dynamos.fi");

  // A fleet of boats: four near the user, two at a guest harbor 8 km
  // east. WiFi-equipped communicators, 80 m spacing near the user.
  struct BoatSpec {
    const char* name;
    net::Position pos;
  };
  const BoatSpec fleet[] = {
      {"user-boat", {0, 0}},        {"aurora", {80, 0}},
      {"borea", {160, 0}},          {"sirocco", {80, 60}},
      {"harbor-1", {8000, 0}},      {"harbor-2", {8050, 30}},
  };
  std::vector<testbed::Device*> boats;
  for (const auto& spec : fleet) {
    testbed::DeviceOptions opts;
    opts.name = spec.name;
    opts.profile = phone::Nokia9500();
    opts.position = spec.pos;
    opts.with_bt = false;
    opts.with_wifi = true;
    opts.infra_address = "infra.dynamos.fi";
    boats.push_back(&world.AddDevice(opts));
  }

  // Every boat publishes wind readings into the MANET and reports them to
  // the repository (this is what makes remote regions queryable at all).
  std::vector<std::unique_ptr<core::CollectingClient>> boat_apps;
  std::vector<std::unique_ptr<sim::PeriodicTask>> reporters;
  for (testbed::Device* boat : boats) {
    boat_apps.push_back(std::make_unique<core::CollectingClient>());
    (void)boat->contory().RegisterCxtServer(*boat_apps.back());
    reporters.push_back(std::make_unique<sim::PeriodicTask>(
        world.sim(), 30s, [&world, boat] {
          const auto wind =
              world.environment().Sample(vocab::kWind, boat->position());
          if (!wind.ok()) return;
          CxtItem item;
          item.id = world.sim().ids().NextId("wind");
          item.type = vocab::kWind;
          item.value = *wind;
          item.timestamp = world.Now();
          item.metadata.accuracy = 0.5;
          item.metadata.trust = TrustLevel::kTrusted;
          (void)boat->contory().PublishCxtItem(item, true);
          boat->contory().StoreCxtItem(item);
        }));
  }
  world.RunFor(2min);  // let readings accumulate

  testbed::Device& user = *boats[0];

  std::printf("1) Weather around the user's boat:\n");
  WeatherApp nearby_app{"nearby"};
  const auto q1 = BuildWeatherQuery(user, vocab::kWind,
                                    sensors::ToGeo({80, 0}), 500.0, 3);
  if (const auto id = user.contory().ProcessCxtQuery(q1, nearby_app);
      !id.ok()) {
    std::printf("  submit failed: %s\n", id.status().ToString().c_str());
  }
  world.RunFor(90s);
  std::printf("  -> %d reading(s) from boats nearby\n\n", nearby_app.items);

  std::printf("2) Weather at the guest harbor (8 km east):\n");
  WeatherApp harbor_app{"harbor"};
  const auto q2 = BuildWeatherQuery(user, vocab::kWind,
                                    sensors::ToGeo({8000, 0}), 1000.0, 3);
  if (const auto id = user.contory().ProcessCxtQuery(q2, harbor_app);
      !id.ok()) {
    std::printf("  submit failed: %s\n", id.status().ToString().c_str());
  }
  world.RunFor(90s);
  std::printf("  -> %d reading(s) via the infrastructure\n\n",
              harbor_app.items);

  // Ground truth for comparison: the synthetic wind field has an eastward
  // gradient, so harbor readings should run higher.
  const auto here = world.environment().TrueValue(vocab::kWind,
                                                  {80, 0}, world.Now());
  const auto there = world.environment().TrueValue(vocab::kWind,
                                                   {8000, 0}, world.Now());
  std::printf("true wind: %.1f m/s here, %.1f m/s at the harbor\n",
              here.value_or(0), there.value_or(0));
  return nearby_app.items > 0 && harbor_app.items > 0 ? 0 : 1;
}
