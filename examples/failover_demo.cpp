// Failover demo: the Fig. 5 scenario, narrated.
//
// A phone runs a periodic location query. Provisioning starts on the
// BT-GPS; when the GPS dies, Contory transparently switches to ad hoc
// provisioning from a neighboring boat; when the GPS returns, it switches
// back — "multiple context provisioning strategies are made available and
// can be dynamically and transparently interchanged based on sensor
// availability".
//
// Run: ./build/examples/failover_demo
#include <cstdio>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

class NarratingApp : public core::Client {
 public:
  explicit NarratingApp(testbed::World& world) : world_(world) {}
  void ReceiveCxtItem(const CxtItem& item) override {
    ++items_;
    if (item.source.kind != last_kind_) {
      std::printf("%s first item from %s\n",
                  FormatTime(world_.Now()).c_str(),
                  item.source.ToString().c_str());
      last_kind_ = item.source.kind;
    }
  }
  void InformError(const std::string& msg) override {
    std::printf("%s middleware: %s\n", FormatTime(world_.Now()).c_str(),
                msg.c_str());
  }
  bool MakeDecision(const std::string&) override { return true; }
  [[nodiscard]] int items() const { return items_; }

 private:
  testbed::World& world_;
  int items_ = 0;
  SourceKind last_kind_ = SourceKind::kUnknown;
};

}  // namespace

int main() {
  std::printf("Contory failover demo (the Fig. 5 scenario)\n");
  std::printf("===========================================\n\n");

  testbed::World world{555};
  testbed::DeviceOptions opts;
  opts.name = "phone-A";
  opts.with_cellular = false;
  core::ContextFactoryConfig cfg;
  cfg.recovery_probe_period = 30s;
  opts.factory_config = cfg;
  auto& device = world.AddDevice(opts);
  auto& gps = world.AddGps("gps-1", {3, 0});

  // The neighboring boat that shares its position.
  testbed::DeviceOptions nb;
  nb.name = "phone-B";
  nb.position = {6, 0};
  nb.with_cellular = false;
  auto& neighbor = world.AddDevice(nb);
  core::CollectingClient nb_app;
  (void)neighbor.contory().RegisterCxtServer(nb_app);
  sim::PeriodicTask nb_publish{world.sim(), 5s, [&] {
    CxtItem item;
    item.id = world.sim().ids().NextId("nb");
    item.type = vocab::kLocation;
    item.value = sensors::ToGeo(neighbor.position());
    item.timestamp = world.Now();
    item.metadata.accuracy = 30.0;
    (void)neighbor.contory().PublishCxtItem(item, true);
  }};

  NarratingApp app{world};
  auto q = query::QueryBuilder(vocab::kLocation)
               .For(15min)
               .Every(5s)
               .Build();
  q.id = world.sim().ids().NextId("q");
  const auto id = device.contory().ProcessCxtQuery(q, app);
  if (!id.ok()) {
    std::printf("submit failed: %s\n", id.status().ToString().c_str());
    return 1;
  }
  std::printf("t=0: submitted periodic location query (EVERY 5 sec); "
              "middleware chose its own mechanism\n");

  world.RunFor(155s);
  std::printf("%s --- switching the GPS device off ---\n",
              FormatTime(world.Now()).c_str());
  gps.PowerOff();

  world.RunFor(145s);
  std::printf("%s --- GPS device powered back on ---\n",
              FormatTime(world.Now()).c_str());
  gps.PowerOn();

  world.RunFor(5min);

  std::printf("\nprovisioning switch log:\n");
  for (const auto& sw : device.contory().switch_log()) {
    std::printf("  %s  %s -> %s\n", FormatTime(sw.at).c_str(),
                query::SourceSelName(sw.from), query::SourceSelName(sw.to));
  }
  std::printf("\nitems delivered: %d; phone energy: %.2f J\n", app.items(),
              device.phone().energy().TotalEnergyJoules());
  return device.contory().switch_log().size() >= 2 ? 0 : 1;
}
