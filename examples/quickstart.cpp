// Quickstart: the smallest complete Contory program.
//
// Builds a two-phone world (one publishes temperature readings over the
// ad hoc network, one queries them), submits the paper's example-style
// query through the SQL-like interface, and prints what comes back.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "core/contory.hpp"
#include "testbed/testbed.hpp"

using namespace contory;
using namespace std::chrono_literals;

namespace {

/// The application side of Contory: implement the Client interface.
class QuickstartApp : public core::Client {
 public:
  void ReceiveCxtItem(const CxtItem& item) override {
    std::printf("  [app] received: %s\n", item.ToString().c_str());
  }
  void InformError(const std::string& msg) override {
    std::printf("  [app] error: %s\n", msg.c_str());
  }
  bool MakeDecision(const std::string& msg) override {
    std::printf("  [app] access question: %s -> allow\n", msg.c_str());
    return true;
  }
};

}  // namespace

int main() {
  std::printf("Contory quickstart\n==================\n\n");

  // 1. Build a world: two phones five meters apart, Bluetooth on.
  testbed::World world{42};
  auto& my_phone = world.AddDevice({.name = "my-phone"});
  testbed::DeviceOptions peer_opts;
  peer_opts.name = "peer-phone";
  peer_opts.position = {5, 0};
  auto& peer = world.AddDevice(peer_opts);

  // 2. The peer registers as a context server and publishes temperature
  //    readings into the ad hoc network every 10 seconds.
  core::CollectingClient peer_app;
  if (!peer.contory().RegisterCxtServer(peer_app).ok()) return 1;
  sim::PeriodicTask publish{world.sim(), 10s, [&] {
    CxtItem item;
    item.id = world.sim().ids().NextId("reading");
    item.type = vocab::kTemperature;
    item.value = 14.0 + 0.1 * ToSeconds(world.Now());
    item.timestamp = world.Now();
    item.metadata.accuracy = 0.2;
    (void)peer.contory().PublishCxtItem(item, /*publish=*/true);
  }};
  world.RunFor(11s);

  // 3. Write a context query in the SQL-like language and submit it.
  const char* text =
      "SELECT temperature "
      "FROM adHocNetwork(all,1) "
      "WHERE accuracy<=0.5 "
      "FRESHNESS 30 sec "
      "DURATION 2 min "
      "EVERY 20 sec";
  std::printf("query:\n%s\n\n", text);
  auto q = query::CxtQuery::Parse(text);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }

  QuickstartApp app;
  const auto id = my_phone.contory().ProcessCxtQuery(*q, app);
  if (!id.ok()) {
    std::printf("submit error: %s\n", id.status().ToString().c_str());
    return 1;
  }
  std::printf("submitted as %s; running the world for 2.5 minutes...\n\n",
              id->c_str());

  // 4. Let the simulated world run; deliveries arrive as they happen.
  world.RunFor(2min + 30s);

  std::printf(
      "\nenergy spent by my-phone: %.3f J "
      "(13 s BT discovery dominates)\n",
      my_phone.phone().energy().TotalEnergyJoules());
  std::printf("done.\n");
  return 0;
}
